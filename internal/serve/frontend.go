package serve

import (
	"cashmere/internal/simnet"
	"cashmere/internal/trace"
)

// Verdict is the admission decision for one arrival.
type Verdict int

// Admission verdicts.
const (
	// Admitted: the request entered its tenant queue.
	Admitted Verdict = iota
	// ShedThrottle: the tenant's token bucket is empty; retry after the
	// returned hint (rate backpressure).
	ShedThrottle
	// ShedQueue: the tenant's bounded queue is full; retry after the
	// returned hint (overload backpressure).
	ShedQueue
)

// Request is one in-flight unit of service. Requests are pooled by the
// frontend: the steady-state admit→dispatch→complete cycle recycles
// records through an intrusive freelist and never allocates.
type Request struct {
	Tenant  int
	Class   int
	Arrive  simnet.Time // admission time
	Issue   simnet.Time // dispatch time (queue wait = Issue - Arrive)
	Retried bool        // this is the re-offer of a shed arrival

	cost float64  // WFQ service cost (CostHint ns)
	next *Request // intrusive FIFO / freelist link
}

// tenantState is the frontend's runtime state for one tenant.
type tenantState struct {
	spec       TenantSpec
	queueLimit int

	// Token bucket (lazy refill on virtual time).
	tokens   float64
	rate     float64 // tokens per ns
	burst    float64
	lastFill simnet.Time

	// Bounded FIFO of admitted requests (intrusive list).
	head, tail *Request
	qlen       int

	// Weighted-fair queueing: finish tag of the last dispatched request
	// and the precomputed head-of-line finish tag (valid while qlen > 0).
	lastFinish float64
	headTag    float64

	// Class picker: cumulative mix weights.
	cum      []int
	totalCum int
	costs    []float64 // per-class WFQ cost, ns
	caps     []int     // per-class batch cap (JobClass.MaxBatch or Config.MaxBatch)

	// Accounting.
	Offered      int64
	Admitted     int64
	ShedThrottle int64
	ShedQueue    int64
	Retries      int64
	Completed    int64
	Errors       int64
	SLOOk        int64
	MaxQueue     int
	Hist         Hist
}

// Frontend is the admission-control and queueing stage between the
// workload generator and the per-node device schedulers. All its methods
// run inside one simulation (simnet serializes processes), so it needs no
// locking; concurrency across dispatchers is concurrency in virtual time.
type Frontend struct {
	cfg     Config
	tenants []tenantState
	rec     *trace.Recorder

	vt       float64 // WFQ virtual time
	queued   int     // requests across all tenant queues
	inflight int     // requests dispatched, not yet completed
	maxDepth int     // high-water mark of queued

	free           *Request // request freelist
	gensLive       int      // arrival generators still running
	pendingRetries int      // shed re-offers scheduled but not yet fired

	// work is where idle dispatchers park; admissions wake them.
	work simnet.WaitList
	// done completes when generators finished and all queues drained.
	done *simnet.Future[struct{}]
	// el is the elastic capacity controller (nil for fixed fleets).
	el *elastic

	// Global accounting.
	Batches      int64
	BatchedReqs  int64
	Hist         Hist
	offeredTotal int64
}

// NewFrontend builds the frontend for a configuration. rec may be nil
// (tracing off). k may be nil for pure queueing tests and benchmarks; the
// DES glue passes the simulation kernel so completion futures work.
func NewFrontend(k *simnet.Kernel, cfg Config, rec *trace.Recorder) *Frontend {
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 1
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = defaultRetryAfter
	}
	f := &Frontend{cfg: cfg, rec: rec}
	if k != nil {
		f.done = simnet.NewFuture[struct{}](k)
	}
	f.tenants = make([]tenantState, len(cfg.Tenants))
	for i, spec := range cfg.Tenants {
		t := &f.tenants[i]
		t.spec = spec
		t.queueLimit = spec.QueueLimit
		if t.queueLimit <= 0 {
			t.queueLimit = DefaultQueueLimit
		}
		t.rate = spec.BucketRatePerSec / 1e9
		t.burst = float64(spec.BucketBurst)
		if t.burst < 1 {
			t.burst = 1
		}
		t.tokens = t.burst
		for _, c := range spec.Mix {
			w := c.Weight
			if w < 1 {
				w = 1
			}
			t.totalCum += w
			t.cum = append(t.cum, t.totalCum)
			cost := float64(c.CostHint)
			if cost <= 0 {
				cost = float64(defaultCostHint)
			}
			t.costs = append(t.costs, cost)
			bc := cfg.MaxBatch
			if c.MaxBatch > 0 {
				bc = c.MaxBatch
			}
			t.caps = append(t.caps, bc)
		}
	}
	return f
}

const (
	defaultRetryAfter = simnet.Duration(1e6)  // 1ms
	defaultCostHint   = simnet.Duration(1e5)  // 100µs
	maxRetryAfter     = simnet.Duration(50e6) // hint cap, 50ms
)

// Tenant returns tenant i's accounting state (read-only use).
func (f *Frontend) Tenant(i int) *tenantState { return &f.tenants[i] }

// Tenants reports the tenant count.
func (f *Frontend) Tenants() int { return len(f.tenants) }

// Queued reports the total number of requests waiting across tenants.
func (f *Frontend) Queued() int { return f.queued }

// Inflight reports the number of dispatched, uncompleted requests.
func (f *Frontend) Inflight() int { return f.inflight }

// MaxDepth reports the high-water mark of the total queue depth.
func (f *Frontend) MaxDepth() int { return f.maxDepth }

// Offered reports the total arrivals (including retries) presented to
// admission.
func (f *Frontend) Offered() int64 { return f.offeredTotal }

// refill lazily refreshes tenant t's token bucket at time now.
func (t *tenantState) refill(now simnet.Time) {
	if t.rate <= 0 {
		return
	}
	if dt := now - t.lastFill; dt > 0 {
		t.tokens += float64(dt) * t.rate
		if t.tokens > t.burst {
			t.tokens = t.burst
		}
	}
	t.lastFill = now
}

// weight returns the tenant's WFQ weight (>= 1).
func (t *tenantState) weight() float64 {
	if t.spec.Weight < 1 {
		return 1
	}
	return float64(t.spec.Weight)
}

// alloc takes a request record off the freelist (or allocates one).
func (f *Frontend) alloc() *Request {
	if r := f.free; r != nil {
		f.free = r.next
		*r = Request{}
		return r
	}
	return &Request{}
}

// Release returns a completed request record to the pool.
func (f *Frontend) Release(r *Request) {
	r.next = f.free
	f.free = r
}

// Admit presents one arrival of (tenant, class) at time now. On Admitted
// the returned request is queued; on a shed verdict the request is nil and
// retryAfter carries the backpressure hint a client should wait before
// re-offering.
//
// This is the serving fast path: no allocation, no map access, no label
// formatting (trace counters no-op on a nil recorder).
func (f *Frontend) Admit(now simnet.Time, tenant, class int) (r *Request, v Verdict, retryAfter simnet.Duration) {
	t := &f.tenants[tenant]
	t.Offered++
	f.offeredTotal++

	if t.rate > 0 {
		t.refill(now)
		if t.tokens < 1 {
			t.ShedThrottle++
			f.rec.CounterAdd(0, "serve.shed_throttle", now, 1)
			wait := simnet.Duration((1 - t.tokens) / t.rate)
			if wait > maxRetryAfter {
				wait = maxRetryAfter
			}
			return nil, ShedThrottle, wait
		}
	}
	if t.qlen >= t.queueLimit {
		t.ShedQueue++
		f.rec.CounterAdd(0, "serve.shed_queue", now, 1)
		hint := f.cfg.RetryAfter
		if f.el != nil {
			// With nodes draining or down the backlog clears more slowly;
			// stretch the hint by the inactive slot fraction so retries do
			// not slam a shrunken fleet.
			hint = f.el.scaleHint(hint)
		}
		return nil, ShedQueue, hint
	}
	if t.rate > 0 {
		t.tokens--
	}

	r = f.alloc()
	r.Tenant = tenant
	r.Class = class
	r.Arrive = now
	r.cost = t.costs[class]

	// FIFO push.
	if t.tail == nil {
		t.head, t.tail = r, r
		// Queue transitioned empty→backlogged: stamp the head's WFQ
		// finish tag (start-time fair queueing: start at max(vt, last
		// finish), finish cost/weight later).
		start := t.lastFinish
		if f.vt > start {
			start = f.vt
		}
		t.headTag = start + r.cost/t.weight()
	} else {
		t.tail.next = r
		t.tail = r
	}
	t.qlen++
	if t.qlen > t.MaxQueue {
		t.MaxQueue = t.qlen
	}
	f.queued++
	if f.queued > f.maxDepth {
		f.maxDepth = f.queued
	}
	t.Admitted++
	f.rec.CounterAdd(0, "serve.admitted", now, 1)
	f.rec.GaugeSet(0, "serve.queue_depth", now, int64(f.queued))
	return r, Admitted, 0
}

// pop removes and returns tenant t's head request. The caller updates WFQ
// tags.
func (t *tenantState) pop() *Request {
	r := t.head
	t.head = r.next
	if t.head == nil {
		t.tail = nil
	}
	r.next = nil
	t.qlen--
	return r
}

// NextBatch pops the next batch to dispatch under weighted-fair queueing:
// the head request of the tenant with the smallest virtual finish tag,
// plus up to MaxBatch-1 consecutive same-class requests of that tenant
// (compatible launches coalesce into one enqueue to amortize H2D setup;
// only classes with a BatchParam coalesce). Popped requests are appended
// to dst (reused across calls by each dispatcher) with Issue stamped.
// Returns dst unchanged when nothing is queued.
func (f *Frontend) NextBatch(now simnet.Time, dst []*Request) []*Request {
	best := -1
	var bestTag float64
	for i := range f.tenants {
		t := &f.tenants[i]
		if t.qlen == 0 {
			continue
		}
		if best == -1 || t.headTag < bestTag {
			best, bestTag = i, t.headTag
		}
	}
	if best == -1 {
		return dst
	}
	t := &f.tenants[best]
	w := t.weight()

	// The WFQ virtual time is the largest start tag ever dispatched; it is
	// consulted only when an idle tenant becomes backlogged (Admit), so a
	// returning tenant cannot claim an ancient tag, while a continuously
	// backlogged one chains finish tags and keeps exactly its weighted
	// share.
	r := t.pop()
	r.Issue = now
	if s := bestTag - r.cost/w; s > f.vt {
		f.vt = s
	}
	t.lastFinish = bestTag
	dst = append(dst, r)

	batchable := t.spec.Mix[r.Class].BatchParam != ""
	for batchable && len(dst) < t.caps[r.Class] && t.qlen > 0 && t.head.Class == r.Class {
		nr := t.pop()
		nr.Issue = now
		if t.lastFinish > f.vt {
			f.vt = t.lastFinish // coalesced request's start tag
		}
		t.lastFinish += nr.cost / w
		dst = append(dst, nr)
	}
	if t.qlen > 0 {
		t.headTag = t.lastFinish + t.head.cost/w
	}

	n := len(dst)
	f.queued -= n
	f.inflight += n
	f.Batches++
	if n > 1 {
		f.BatchedReqs += int64(n)
	}
	f.rec.GaugeSet(0, "serve.queue_depth", now, int64(f.queued))
	return dst
}

// Complete finishes a dispatched request at time now: latency accounting,
// SLO check, and recycling of the record. ok=false counts an execution
// error instead of a completion (the latency histogram only sees
// successes).
func (f *Frontend) Complete(now simnet.Time, r *Request, ok bool) {
	t := &f.tenants[r.Tenant]
	f.inflight--
	if ok {
		lat := int64(now - r.Arrive)
		t.Hist.Observe(lat)
		f.Hist.Observe(lat)
		t.Completed++
		if simnet.Duration(lat) <= f.cfg.SLO {
			t.SLOOk++
		}
		f.rec.CounterAdd(0, "serve.completed", now, 1)
	} else {
		t.Errors++
		f.rec.CounterAdd(0, "serve.errors", now, 1)
	}
	f.Release(r)
}

// Drained reports whether the service is finished: all generators exited,
// no retry is pending, and no request is queued or in flight.
func (f *Frontend) Drained() bool {
	return f.gensLive == 0 && f.pendingRetries == 0 && f.queued == 0 && f.inflight == 0
}

// requeue returns an aborted batch (popped by NextBatch, never executed)
// to the front of its tenant's queue in original order, refunding the WFQ
// finish-tag charge the pops accrued. The requests are not re-admitted —
// Offered/Admitted are untouched and the queue-depth gauge is set to the
// corrected absolute value, so nothing is double-counted.
func (f *Frontend) requeue(now simnet.Time, batch []*Request) {
	if len(batch) == 0 {
		return
	}
	t := &f.tenants[batch[0].Tenant]
	w := t.weight()
	var cost float64
	for i := len(batch) - 1; i >= 0; i-- {
		r := batch[i]
		r.next = t.head
		t.head = r
		if t.tail == nil {
			t.tail = r
		}
		cost += r.cost
	}
	t.qlen += len(batch)
	if t.qlen > t.MaxQueue {
		t.MaxQueue = t.qlen
	}
	f.queued += len(batch)
	if f.queued > f.maxDepth {
		f.maxDepth = f.queued
	}
	f.inflight -= len(batch)
	// Refund the charge, then restamp the head tag the way Admit does for an
	// empty→backlogged transition: the batch must not inherit a finish tag it
	// never got service for, nor claim an ancient start.
	t.lastFinish -= cost / w
	start := t.lastFinish
	if f.vt > start {
		start = f.vt
	}
	t.headTag = start + t.head.cost/w
	if f.el != nil {
		f.el.Migrated += int64(len(batch))
	}
	f.rec.CounterAdd(0, "serve.migrated", now, int64(len(batch)))
	f.rec.GaugeSet(0, "serve.queue_depth", now, int64(f.queued))
}
