// Package serve turns the simulated Cashmere cluster into an online,
// latency-governed service. Where the batch scheduler of Sec. III-B
// minimizes the makespan of a closed job set, this layer models the
// open-loop regime of a production deployment: requests arrive whether or
// not the cluster is ready, and the metric is the latency distribution —
// p50/p95/p99 against an SLO — not completion time.
//
// The subsystem has three parts, all running inside the discrete-event
// simulation:
//
//   - a deterministic workload generator: per-tenant arrival processes
//     (open-loop Poisson, bursty two-state MMPP, diurnal rate modulation)
//     driven by the per-simulation RNG, with each tenant drawing requests
//     from a weighted mix of kernel job classes (internal/apps kernels);
//
//   - a multi-tenant frontend: per-tenant token-bucket admission and
//     bounded queues with load shedding (retry-after backpressure),
//     weighted-fair queueing across tenants into the per-node device
//     schedulers, and small-job batching that coalesces queued requests of
//     the same job class into one kernel launch to amortize H2D setup;
//
//   - SLO accounting: log-bucketed mergeable latency histograms on virtual
//     time, per-tenant goodput/shed counters and queue-depth gauges, all
//     exported through trace counters and the CollectMetrics dump.
//
// The steady-state admit→dispatch path allocates nothing (pooled request
// records, intrusive FIFOs, linear-scan WFQ); `make bench-allocs` pins it.
package serve

import (
	"fmt"
	"time"

	"cashmere/internal/apps"
	"cashmere/internal/core"
	"cashmere/internal/device"
	"cashmere/internal/mcl/codegen"
	"cashmere/internal/mcl/hdl"
	"cashmere/internal/mcl/tune"
	"cashmere/internal/network"
	"cashmere/internal/simnet"
)

// JobClass is one kind of request a tenant issues: a kernel launch with
// fixed parameters and transfer sizes, or a whole dataflow graph.
type JobClass struct {
	// Name labels spans and reports.
	Name string
	// Kernel is the registered kernel-set name the request launches.
	// Ignored when Graph is set.
	Kernel string
	// Graph, when non-nil, makes each request of this class one run of the
	// compound multi-kernel dataflow graph instead of a single launch: the
	// executing node schedules the whole DAG across its devices (chained
	// intermediates, split stages). Graph classes cannot batch (BatchParam
	// must be empty); InBytes/OutBytes should be the graph's external
	// footprint (GraphSpec.ExternalBytes) for network accounting.
	Graph *core.GraphSpec
	// Params are the launch's scalar kernel parameters.
	Params map[string]int64
	// BatchParam names the parameter that scales linearly when several
	// requests of this class coalesce into one launch (k requests multiply
	// it by k). Empty disables batching for the class.
	BatchParam string
	// InBytes/OutBytes are the per-request host↔device transfer sizes.
	InBytes, OutBytes int64
	// Flops is the per-request useful operation count (goodput accounting).
	Flops float64
	// CostHint is the estimated per-request service time; it is the WFQ
	// cost unit and the token-bucket work weight. EstimateCosts fills it
	// from the device cost model when zero.
	CostHint simnet.Duration
	// MaxBatch, when > 0, caps batching for this class specifically,
	// overriding Config.MaxBatch. ApplyTuning sizes it from the tuned
	// per-request service time so a full batch stays within half the SLO —
	// cheap tuned classes batch deeper, expensive ones stop coalescing.
	MaxBatch int
	// Weight is the selection weight of this class within the tenant mix.
	Weight int
}

// ArrivalKind selects the arrival process of a tenant.
type ArrivalKind int

// Arrival processes.
const (
	// Poisson is an open-loop Poisson process: exponential inter-arrival
	// gaps at a fixed mean rate.
	Poisson ArrivalKind = iota
	// MMPP is a two-state Markov-modulated Poisson process: the tenant
	// alternates between a quiet and a burst state with exponential dwell
	// times; the time-averaged rate equals RatePerSec.
	MMPP
	// Diurnal modulates the Poisson rate sinusoidally over virtual time
	// (a compressed day), so the run sweeps through under- and overload.
	Diurnal
	// Replay offers requests at the exact offsets of an explicit schedule
	// (ArrivalSpec.Trace), optionally tiled every TracePeriod — the
	// trace-replay workload source (see replay.go).
	Replay
)

func (k ArrivalKind) String() string {
	switch k {
	case MMPP:
		return "mmpp"
	case Diurnal:
		return "diurnal"
	case Replay:
		return "replay"
	default:
		return "poisson"
	}
}

// ArrivalKindFromString parses an arrival-process name.
func ArrivalKindFromString(s string) (ArrivalKind, error) {
	switch s {
	case "poisson":
		return Poisson, nil
	case "mmpp":
		return MMPP, nil
	case "diurnal":
		return Diurnal, nil
	case "replay":
		return Replay, nil
	}
	return Poisson, fmt.Errorf("serve: unknown arrival process %q", s)
}

// ArrivalSpec configures a tenant's arrival process.
type ArrivalSpec struct {
	Kind ArrivalKind
	// RatePerSec is the mean offered rate in requests per second of
	// virtual time.
	RatePerSec float64
	// BurstFactor (MMPP) is the rate multiplier of the burst state (>1).
	BurstFactor float64
	// BurstFraction (MMPP) is the long-run fraction of time in the burst
	// state (0..1).
	BurstFraction float64
	// CycleMean (MMPP) is the mean quiet+burst cycle length.
	CycleMean simnet.Duration
	// Period (Diurnal) is the modulation period.
	Period simnet.Duration
	// Swing (Diurnal) is the modulation amplitude as a fraction of the
	// mean rate (0..1): rate(t) = Rate * (1 + Swing*sin(2πt/Period)).
	Swing float64
	// Trace (Replay) is the explicit arrival schedule, sorted by offset.
	Trace []TraceEvent
	// TracePeriod (Replay) tiles the trace: after each pass the schedule
	// repeats shifted by this period until the horizon. Zero plays it once.
	TracePeriod simnet.Duration
}

// TenantSpec configures one tenant of the service.
type TenantSpec struct {
	// Name identifies the tenant in reports and metrics.
	Name string
	// Weight is the tenant's weighted-fair-queueing share.
	Weight int
	// Arrival is the tenant's arrival process.
	Arrival ArrivalSpec
	// BucketRatePerSec is the token-bucket refill rate (requests/s of
	// virtual time); arrivals beyond it are shed with a retry-after hint.
	// Zero disables throttling for the tenant.
	BucketRatePerSec float64
	// BucketBurst is the bucket depth (max tokens).
	BucketBurst int
	// QueueLimit bounds the tenant's pending queue; arrivals beyond it are
	// shed (overload backpressure). Zero means DefaultQueueLimit.
	QueueLimit int
	// Mix is the weighted set of job classes the tenant draws from.
	Mix []JobClass
}

// DefaultQueueLimit bounds a tenant queue when TenantSpec.QueueLimit is 0.
const DefaultQueueLimit = 256

// Config describes one serving experiment.
type Config struct {
	// Tenants are the service's tenants.
	Tenants []TenantSpec
	// Horizon is the virtual-time span during which requests arrive; the
	// run then drains admitted requests and stops.
	Horizon simnet.Duration
	// MaxBatch caps how many same-class requests coalesce into one launch
	// (1 disables batching).
	MaxBatch int
	// SLO is the latency target; completions within it count as goodput.
	SLO simnet.Duration
	// DispatchersPerNode is the number of dispatcher threads placed on
	// each node (0 = one per device of the node). Each dispatcher feeds
	// the node's device scheduler one batch at a time.
	DispatchersPerNode int
	// Retry re-offers a shed request once after its retry-after hint
	// (client retry model). The retried arrival is counted separately.
	Retry bool
	// RetryAfter is the retry-after hint attached to queue-overload sheds
	// (throttle sheds compute the hint from the token bucket). Zero means
	// 1ms. When nodes are draining or down, the hint is stretched by the
	// inactive slot fraction (see elastic.scaleHint).
	RetryAfter simnet.Duration
	// Autoscale, when non-nil, enables the elastic autoscaler: nodes are
	// added under queue/latency pressure and drained back out when idle
	// (see AutoscaleConfig).
	Autoscale *AutoscaleConfig
	// Chaos, when non-nil, enables deterministic fault injection: network
	// partitions, device stragglers and correlated crashes (see
	// ChaosConfig).
	Chaos *ChaosConfig
}

// Workload pairs the kernel sets a serving experiment must register with
// the tenant population issuing requests against them.
type Workload struct {
	KernelSets []*codegen.KernelSet
	Tenants    []TenantSpec
}

// EstimateCosts fills every zero JobClass.CostHint with the modeled
// per-request service time on the named device — kernel time plus the PCIe
// transfers of the request's working set (the static-speed bootstrap of the
// serving layer, mirroring the batch scheduler's speed table). Network
// transfer to a remote node is not included here; CapacityRPS folds it in
// when sizing offered load.
func (w *Workload) EstimateCosts(dev string) error {
	spec, err := device.Lookup(dev)
	if err != nil {
		return err
	}
	byName := map[string]*codegen.KernelSet{}
	for _, ks := range w.KernelSets {
		byName[ks.Name] = ks
	}
	for ti := range w.Tenants {
		mix := w.Tenants[ti].Mix
		for ci := range mix {
			if g := mix[ci].Graph; g != nil {
				if mix[ci].BatchParam != "" {
					return fmt.Errorf("serve: graph class %s cannot batch (BatchParam must be empty)", mix[ci].Name)
				}
				if mix[ci].CostHint > 0 {
					continue
				}
				hint, err := g.EstimateCost(spec, hdl.Library(), byName)
				if err != nil {
					return err
				}
				mix[ci].CostHint = hint
				continue
			}
			if mix[ci].CostHint > 0 {
				continue
			}
			ks, ok := byName[mix[ci].Kernel]
			if !ok {
				return fmt.Errorf("serve: class %s uses unregistered kernel %q", mix[ci].Name, mix[ci].Kernel)
			}
			c, err := ks.Compile(spec.Leaf, hdl.Library())
			if err != nil {
				return err
			}
			cost, err := c.Cost(mix[ci].Params)
			if err != nil {
				return err
			}
			mix[ci].CostHint = spec.KernelTime(cost) +
				spec.TransferTime(mix[ci].InBytes) + spec.TransferTime(mix[ci].OutBytes)
		}
	}
	return nil
}

// ApplyTuning refines the workload from an auto-tuning cache: every
// non-graph class whose kernel has a cached winner for the device gets its
// CostHint recomputed at the tuned configuration (tuned level, tuned launch
// geometry, geometry-aware cost model), and batchable classes get a
// per-class MaxBatch sized so a full batch of tuned requests fits in half
// the SLO. Classes without a cached winner keep the static estimate.
func (w *Workload) ApplyTuning(cache *tune.Cache, dev string, slo simnet.Duration) error {
	if cache == nil {
		return nil
	}
	spec, err := device.Lookup(dev)
	if err != nil {
		return err
	}
	h := hdl.Library()
	byName := map[string]*codegen.KernelSet{}
	for _, ks := range w.KernelSets {
		byName[ks.Name] = ks
	}
	for ti := range w.Tenants {
		mix := w.Tenants[ti].Mix
		for ci := range mix {
			if mix[ci].Graph != nil || mix[ci].Kernel == "" {
				continue
			}
			ks, ok := byName[mix[ci].Kernel]
			if !ok {
				continue
			}
			e, ok := cache.Lookup(tune.Key(ks, spec))
			if !ok {
				continue
			}
			c, err := ks.CompileAt(e.Level, spec.Leaf, h)
			if err != nil {
				return err
			}
			if len(e.Local) > 0 {
				if err := c.SetLaunchExtents(e.Local); err != nil {
					return err
				}
			}
			c.EnableGeometryCost()
			cost, err := c.Cost(mix[ci].Params)
			if err != nil {
				return err
			}
			mix[ci].CostHint = spec.KernelTime(cost) +
				spec.TransferTime(mix[ci].InBytes) + spec.TransferTime(mix[ci].OutBytes)
			if mix[ci].BatchParam != "" && mix[ci].CostHint > 0 && slo > 0 {
				nb := int(slo / 2 / mix[ci].CostHint)
				if nb < 1 {
					nb = 1
				}
				if nb > 16 {
					nb = 16
				}
				mix[ci].MaxBatch = nb
			}
		}
	}
	return nil
}

// CapacityRPS estimates the saturation throughput of a cluster of nDevices
// devices of the given type under this workload: the number of requests per
// second the devices can serve when every tenant draws classes at its mix
// weights. Dispatch to a remote node also pays the interconnect transfer of
// the request's working set (QDR InfiniBand, the default fabric), weighted
// by the fraction of devices that are remote. It is the scale against which
// offered-load factors are set.
func (w *Workload) CapacityRPS(dev string, nDevices int) (float64, error) {
	if err := w.EstimateCosts(dev); err != nil {
		return 0, err
	}
	net := network.QDRInfiniBand()
	remoteFrac := 0.0
	if nDevices > 1 {
		remoteFrac = float64(nDevices-1) / float64(nDevices)
	}
	// Mean service time per request across the tenant population, weighting
	// tenants by offered rate and classes by mix weight.
	var totRate, weighted float64
	for _, t := range w.Tenants {
		var wsum, tsum float64
		for _, c := range t.Mix {
			svc := float64(c.CostHint) +
				remoteFrac*float64(net.TransferTime(c.InBytes)+net.TransferTime(c.OutBytes))
			wsum += float64(c.Weight)
			tsum += float64(c.Weight) * svc
		}
		if wsum == 0 {
			continue
		}
		rate := t.Arrival.RatePerSec
		if rate <= 0 {
			rate = 1
		}
		totRate += rate
		weighted += rate * tsum / wsum
	}
	if totRate == 0 || weighted == 0 {
		return 0, fmt.Errorf("serve: workload has no rated tenants")
	}
	meanService := weighted / totRate / 1e9 // seconds
	return float64(nDevices) / meanService, nil
}

// ScaleRates multiplies every tenant's offered rate and token-bucket rate
// by f (used by the latency-vs-load sweep).
func (w *Workload) ScaleRates(f float64) {
	for i := range w.Tenants {
		w.Tenants[i].Arrival.RatePerSec *= f
		w.Tenants[i].BucketRatePerSec *= f
	}
}

// StandardWorkload is the default three-tenant population used by
// cashmere-serve and the latency-vs-load experiment:
//
//   - "interactive": high WFQ weight, small matmul requests, Poisson
//     arrivals — the latency-sensitive tenant;
//   - "analytics": low weight, a mix of k-means assignment scans and
//     larger matmuls, bursty MMPP arrivals — the throughput tenant;
//   - "batchy": lowest weight, diurnal arrivals of medium matmuls — the
//     background tenant that fills troughs.
//
// Rates are per-tenant shares of `total` requests/s.
func StandardWorkload(total float64) (*Workload, error) {
	mmSmall := JobClass{
		Name: "mm256", Kernel: "matmul", BatchParam: "n",
		Params:  map[string]int64{"n": 256, "m": 256, "p": 256},
		InBytes: 4 * (256*256 + 256*256 + 256*256), OutBytes: 4 * 256 * 256,
		Flops: 2 * 256 * 256 * 256, Weight: 1,
	}
	mmMed := JobClass{
		Name: "mm512", Kernel: "matmul", BatchParam: "n",
		Params:  map[string]int64{"n": 512, "m": 512, "p": 512},
		InBytes: 4 * (512*512 + 512*512 + 512*512), OutBytes: 4 * 512 * 512,
		Flops: 2 * 512 * 512 * 512, Weight: 1,
	}
	kmScan := JobClass{
		Name: "km64k", Kernel: "kmeans", BatchParam: "n",
		Params:  map[string]int64{"n": 64 * 1024, "k": 256, "d": 4},
		InBytes: 4 * 64 * 1024 * 4, OutBytes: 4 * 64 * 1024,
		Flops: 3 * 256 * 4 * 64 * 1024, Weight: 2,
	}

	mm, err := codegen.NewKernelSet("matmul", apps.MatmulPerfect, apps.MatmulGPU)
	if err != nil {
		return nil, err
	}
	km, err := codegen.NewKernelSet("kmeans", apps.KMeansPerfect, apps.KMeansGPU)
	if err != nil {
		return nil, err
	}

	return &Workload{
		KernelSets: []*codegen.KernelSet{mm, km},
		Tenants: []TenantSpec{
			{
				Name: "interactive", Weight: 4,
				Arrival:          ArrivalSpec{Kind: Poisson, RatePerSec: 0.5 * total},
				BucketRatePerSec: 0.6 * total, BucketBurst: 32,
				QueueLimit: 128,
				Mix:        []JobClass{mmSmall},
			},
			{
				Name: "analytics", Weight: 2,
				Arrival: ArrivalSpec{
					Kind: MMPP, RatePerSec: 0.3 * total,
					BurstFactor: 4, BurstFraction: 0.2, CycleMean: 200 * time.Millisecond,
				},
				BucketRatePerSec: 0.45 * total, BucketBurst: 64,
				QueueLimit: 192,
				Mix:        []JobClass{kmScan, mmMed},
			},
			{
				Name: "batchy", Weight: 1,
				Arrival: ArrivalSpec{
					Kind: Diurnal, RatePerSec: 0.2 * total,
					Period: 500 * time.Millisecond, Swing: 0.8,
				},
				BucketRatePerSec: 0.3 * total, BucketBurst: 16,
				QueueLimit: 96,
				Mix:        []JobClass{mmMed},
			},
		},
	}, nil
}

// DefaultConfig returns the serving configuration used by cashmere-serve:
// the standard workload's tenants, a 1-second horizon, batching up to 4,
// and a 50ms SLO.
func DefaultConfig(w *Workload) Config {
	return Config{
		Tenants:    w.Tenants,
		Horizon:    time.Second,
		MaxBatch:   4,
		SLO:        50 * time.Millisecond,
		Retry:      true,
		RetryAfter: time.Millisecond,
	}
}
