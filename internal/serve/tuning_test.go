package serve

import (
	"testing"
	"time"

	"cashmere/internal/device"
	"cashmere/internal/mcl/hdl"
	"cashmere/internal/mcl/tune"
)

func TestPerClassMaxBatchCapsCoalescing(t *testing.T) {
	// Class 0 caps at 2 below the global 4; class 1 inherits the global cap.
	deep := classFixed("deep", time.Millisecond, "n")
	capped := classFixed("capped", time.Millisecond, "n")
	capped.MaxBatch = 2
	f := NewFrontend(nil, feConfig(TenantSpec{
		Name: "a", Weight: 1,
		Mix: []JobClass{capped, deep},
	}), nil)

	for i := 0; i < 4; i++ {
		if _, v, _ := f.Admit(0, 0, 0); v != Admitted {
			t.Fatalf("arrival %d shed", i)
		}
	}
	batch := f.NextBatch(0, nil)
	if len(batch) != 2 {
		t.Fatalf("capped class batched %d, want 2", len(batch))
	}
	for _, r := range batch {
		f.Complete(0, r, true)
	}

	// The uncapped class still coalesces up to the global limit.
	for i := 0; i < 4; i++ {
		if _, v, _ := f.Admit(0, 0, 1); v != Admitted {
			t.Fatalf("arrival %d shed", i)
		}
	}
	// Drain the two leftovers of class 0 first (FIFO per tenant).
	rest := f.NextBatch(0, nil)
	if len(rest) != 2 {
		t.Fatalf("leftover batch = %d, want 2", len(rest))
	}
	for _, r := range rest {
		f.Complete(0, r, true)
	}
	batch = f.NextBatch(0, nil)
	if len(batch) != 4 {
		t.Fatalf("uncapped class batched %d, want global max 4", len(batch))
	}
	for _, r := range batch {
		f.Complete(0, r, true)
	}
}

func TestApplyTuningRefinesCostAndBatch(t *testing.T) {
	w, err := StandardWorkload(100)
	if err != nil {
		t.Fatal(err)
	}
	const dev = "gtx480"
	spec, err := device.Lookup(dev)
	if err != nil {
		t.Fatal(err)
	}
	h := hdl.Library()

	// Tune every kernel of the workload into a cache.
	cache := tune.NewCache()
	for _, ks := range w.KernelSets {
		params := map[string]int64{"n": 512, "m": 512, "p": 512}
		if ks.Name == "kmeans" {
			params = map[string]int64{"n": 64 * 1024, "k": 256, "d": 4}
		}
		req := tune.Request{Set: ks, Device: spec, Params: params, InBytes: 1 << 20, OutBytes: 1 << 18}
		if _, err := cache.TuneOnce(req, h); err != nil {
			t.Fatal(err)
		}
	}

	slo := 50 * time.Millisecond
	if err := w.ApplyTuning(cache, dev, slo); err != nil {
		t.Fatal(err)
	}
	touched := 0
	for _, tn := range w.Tenants {
		for _, c := range tn.Mix {
			if c.CostHint <= 0 {
				t.Fatalf("class %s has no cost after tuning", c.Name)
			}
			if c.BatchParam != "" && c.MaxBatch > 0 {
				touched++
				want := int(slo / 2 / c.CostHint)
				if want < 1 {
					want = 1
				}
				if want > 16 {
					want = 16
				}
				if c.MaxBatch != want {
					t.Fatalf("class %s MaxBatch = %d, want %d (cost %v)", c.Name, c.MaxBatch, want, c.CostHint)
				}
			}
		}
	}
	if touched == 0 {
		t.Fatal("ApplyTuning set no per-class batch caps")
	}

	// A nil cache is a no-op, not an error.
	if err := w.ApplyTuning(nil, dev, slo); err != nil {
		t.Fatal(err)
	}
	// An unknown device errors.
	if err := w.ApplyTuning(cache, "bogus", slo); err == nil {
		t.Fatal("unknown device accepted")
	}
}
