package serve

import "math/bits"

// Hist is a log-bucketed latency histogram over virtual time, the SLO
// accounting structure of the serving layer. Buckets are geometric with
// histSub sub-buckets per octave starting at histBase nanoseconds, so the
// relative quantile error is bounded by 1/histSub (12.5%) across the whole
// range while Observe stays a pair of integer operations and never
// allocates — it is on the request-completion path.
//
// Histograms are mergeable (bucket-wise addition), which is what lets the
// per-tenant histograms roll up into the cluster-wide one and what a
// sharded frontend would need to aggregate per-shard tails. Quantiles are
// computed from integer bucket counts and report the bucket's upper bound,
// so a dump is byte-identical across runs with the same trajectory.
type Hist struct {
	counts [histBuckets]int64
	n      int64
	sum    int64
	max    int64
}

const (
	histBaseBits = 10
	histBase     = 1 << histBaseBits // ~1µs in ns; everything below lands in bucket 0
	histSubBits  = 3
	histSub      = 1 << histSubBits // sub-buckets per octave
	histOctaves  = 44               // covers histBase .. ~18e15 ns (~200 days)
	histBuckets  = 1 + histSub*histOctaves
)

// bucketOf maps a latency in nanoseconds to its bucket index: the octave is
// the position of the leading bit relative to histBase, the sub-bucket the
// next histSubBits bits below it.
func bucketOf(v int64) int {
	if v < histBase {
		return 0
	}
	u := uint64(v)
	top := uint(bits.Len64(u)) - 1 // v in [2^top, 2^(top+1))
	oct := int(top) - histBaseBits
	sub := int(u>>(top-histSubBits)) - histSub
	idx := 1 + oct*histSub + sub
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// bucketUpper is the inclusive upper bound (ns) of bucket idx.
func bucketUpper(idx int) int64 {
	if idx <= 0 {
		return histBase - 1
	}
	oct := (idx - 1) / histSub
	sub := (idx - 1) % histSub
	top := uint(oct + histBaseBits)
	return int64(uint64(histSub+sub+1)<<(top-histSubBits)) - 1
}

// Observe records one latency sample (ns).
func (h *Hist) Observe(ns int64) {
	h.counts[bucketOf(ns)]++
	h.n++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// Count reports the number of samples.
func (h *Hist) Count() int64 { return h.n }

// Mean reports the exact mean latency in nanoseconds (0 when empty).
func (h *Hist) Mean() int64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / h.n
}

// Max reports the exact maximum observed latency in nanoseconds.
func (h *Hist) Max() int64 { return h.max }

// Quantile reports the latency (ns) below which a fraction q of the samples
// fall, as the upper bound of the containing bucket (0 when empty). The
// exact maximum is returned for the last occupied bucket, so p100 (and any
// quantile landing there) never over-reports.
func (h *Hist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q*float64(h.n) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i]
		if cum >= target {
			if cum == h.n {
				return h.max
			}
			return bucketUpper(i)
		}
	}
	return h.max
}

// Merge adds o's samples into h.
func (h *Hist) Merge(o *Hist) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset clears the histogram.
func (h *Hist) Reset() { *h = Hist{} }

// Snapshot returns a value copy of the histogram, the anchor of a windowed
// reading (the autoscaler samples p99 over its control interval, not over
// the whole run, so it reacts to the current regime rather than history).
func (h *Hist) Snapshot() Hist { return *h }

// Delta returns the histogram of the samples recorded since prev was
// snapshotted from this histogram. The exact per-sample max is not
// recoverable from bucket differences, so the delta's max is the upper
// bound of its highest occupied bucket — which keeps Quantile answers
// monotone and deterministic.
func (h *Hist) Delta(prev *Hist) Hist {
	var d Hist
	for i := range h.counts {
		c := h.counts[i] - prev.counts[i]
		d.counts[i] = c
		if c > 0 {
			d.max = bucketUpper(i)
		}
	}
	d.n = h.n - prev.n
	d.sum = h.sum - prev.sum
	return d
}
