package serve

import (
	"math/rand"
	"testing"
)

func TestHistBucketsMonotone(t *testing.T) {
	last := -1
	for _, v := range []int64{0, 1, 500, 1023, 1024, 1500, 2048, 4096, 1e6, 1e9, 1e12, 1e15} {
		b := bucketOf(v)
		if b < last {
			t.Fatalf("bucketOf(%d) = %d, below previous %d", v, b, last)
		}
		if b >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, b)
		}
		last = b
	}
	// Bucket upper bounds must bound the values that land in them within
	// the advertised 1/histSub relative error.
	for v := int64(histBase); v < int64(1e12); v = v*5/4 + 3 {
		ub := bucketUpper(bucketOf(v))
		if ub < v*7/8 {
			t.Fatalf("bucketUpper(bucketOf(%d)) = %d, more than 12.5%% under", v, ub)
		}
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zero")
	}
	// 1000 samples at 1ms, 10 at 100ms: p50 ~1ms, p99.5+ sees the tail.
	for i := 0; i < 1000; i++ {
		h.Observe(1e6)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100e6)
	}
	if p50 := h.Quantile(0.50); p50 < 9e5 || p50 > 1.2e6 {
		t.Fatalf("p50 = %d, want ~1e6", p50)
	}
	if p999 := h.Quantile(0.999); p999 < 80e6 {
		t.Fatalf("p99.9 = %d, want ~100e6", p999)
	}
	if h.Quantile(1) != h.Max() || h.Max() != 100e6 {
		t.Fatalf("p100 = %d, max = %d, want exact max 100e6", h.Quantile(1), h.Max())
	}
	if m := h.Mean(); m != int64(1000*1e6+10*100e6)/1010 {
		t.Fatalf("mean = %d", m)
	}
}

func TestHistMergeMatchesCombined(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b, both Hist
	for i := 0; i < 5000; i++ {
		v := int64(rng.ExpFloat64() * 2e6)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		both.Observe(v)
	}
	a.Merge(&b)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1} {
		if got, want := a.Quantile(q), both.Quantile(q); got != want {
			t.Fatalf("q%.2f: merged %d != combined %d", q, got, want)
		}
	}
	if a.Count() != both.Count() || a.Mean() != both.Mean() || a.Max() != both.Max() {
		t.Fatal("merged count/mean/max differ from combined")
	}
}
