package serve

import (
	"fmt"
	"strings"

	"cashmere/internal/core"
	"cashmere/internal/ocl"
	"cashmere/internal/satin"
	"cashmere/internal/simnet"
	"cashmere/internal/trace"
)

// KindServe is the trace span kind of one served request (admission to
// completion).
const KindServe = trace.Kind("serve")

// Run executes one serving experiment on the cluster: generators offer
// requests for cfg.Horizon of virtual time, dispatchers drain the frontend
// into the per-node device schedulers, and the run ends when the last
// admitted request completes. The workload's kernel sets must already be
// registered on cl.
//
// A given (cluster config, serve config, seed) triple always produces the
// same trajectory, so the returned report — including latency quantiles —
// is byte-stable across runs and harness parallelism.
func Run(cl *core.Cluster, cfg Config) (*Report, error) {
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("serve: no tenants configured")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("serve: non-positive horizon")
	}
	for _, t := range cfg.Tenants {
		if len(t.Mix) == 0 {
			return nil, fmt.Errorf("serve: tenant %q has an empty job mix", t.Name)
		}
		for _, c := range t.Mix {
			if c.Graph != nil && c.BatchParam != "" {
				return nil, fmt.Errorf("serve: tenant %q class %q: graph classes cannot batch", t.Name, c.Name)
			}
		}
	}

	k := cl.Kernel()
	rt := cl.Runtime()
	fe := NewFrontend(k, cfg, cl.Recorder())

	// Remote nodes execute batches via the serve_batch/serve_done protocol
	// (see remote.go); the handler must be installed before the simulation
	// starts so every partition's comm loop observes it.
	disp := newDispatch(fe, cfg, rt)
	if rt.Nodes() > 1 {
		rt.SetMessageHandler(disp.handle)
	}
	slots := func(n int) int {
		if cfg.DispatchersPerNode > 0 {
			return cfg.DispatchersPerNode
		}
		if d := len(cl.NodeState(n).Devices); d > 0 {
			return d
		}
		return 1
	}
	// Proxy reply channels are node-0 state; allocate them before Run.
	type proxySlot struct{ node, proxy int }
	var proxies []proxySlot
	for n := 1; n < rt.Nodes(); n++ {
		for i := 0; i < slots(n); i++ {
			proxies = append(proxies, proxySlot{node: n, proxy: disp.newProxy(k, n)})
		}
	}

	// Elastic capacity: the autoscaler and/or the chaos harness share one
	// node-0 controller holding per-node phases and billing.
	var (
		el          *elastic
		asCfg       AutoscaleConfig
		chaosCfg    ChaosConfig
		chaosScript []ChaosEvent
	)
	if cfg.Autoscale != nil || cfg.Chaos != nil {
		initial := rt.Nodes()
		if cfg.Autoscale != nil {
			asCfg = cfg.Autoscale.norm(rt.Nodes())
			initial = asCfg.Initial
		}
		el = newElastic(fe, disp, rt, slots, initial)
		if cfg.Chaos != nil {
			chaosCfg = cfg.Chaos.norm()
			if la := rt.Scheduler().Lookahead(); simnet.Duration(chaosCfg.PropDelay) < la {
				return nil, fmt.Errorf("serve: chaos PropDelay %v below scheduler lookahead %v", chaosCfg.PropDelay, la)
			}
			chaosScript = chaosCfg.script(rt.Nodes(), cfg.Horizon)
		}
	}
	// Device handles for straggler injection, captured before the run; the
	// devices themselves are only ever touched from their own kernels.
	var devs [][]*ocl.Device
	if len(chaosScript) > 0 {
		devs = make([][]*ocl.Device, rt.Nodes())
		for n := 0; n < rt.Nodes(); n++ {
			devs[n] = cl.NodeState(n).Devices
		}
	}

	_, end, err := cl.Run(func(ctx *satin.Context) any {
		fe.gensLive = len(cfg.Tenants)
		for ti := range cfg.Tenants {
			ti := ti
			k.Spawn("serve.gen."+cfg.Tenants[ti].Name, func(p *simnet.Proc) {
				fe.generate(p, ti)
			})
		}
		// Every dispatcher slot lives on node 0: local slots drive node 0's
		// devices directly, proxy slots drive a remote node over the network.
		for i := 0; i < slots(0); i++ {
			rt.GoOn(0, func(c *satin.Context) { fe.dispatchLoop(c) })
		}
		for _, ps := range proxies {
			ps := ps
			rt.GoOn(0, func(c *satin.Context) { disp.proxyLoop(c, ps.node, ps.proxy) })
		}
		if el != nil && cfg.Autoscale != nil {
			rt.GoOn(0, func(c *satin.Context) { el.autoscaleLoop(c, asCfg) })
		}
		if el != nil && len(chaosScript) > 0 {
			rt.GoOn(0, func(c *satin.Context) { el.chaosLoop(c, chaosCfg, chaosScript, devs) })
		}
		fe.done.Await(ctx.Proc())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fe.report(cfg, end), nil
}

// generate is one tenant's arrival process: draw gaps from the configured
// process until the horizon, offering each arrival to admission.
func (f *Frontend) generate(p *simnet.Proc, tenant int) {
	k := p.Kernel()
	spec := &f.cfg.Tenants[tenant]
	if spec.Arrival.Kind == Replay {
		f.replay(p, tenant)
		f.gensLive--
		f.checkDone(k)
		return
	}
	a := newArrival(spec.Arrival, k.Rand())
	horizon := simnet.Time(f.cfg.Horizon)
	t := &f.tenants[tenant]
	for {
		d := a.next(p.Now())
		if p.Now().Add(d) > horizon {
			break
		}
		p.Hold(d)
		// Draw the class from the tenant mix.
		class := 0
		if t.totalCum > 1 {
			pick := k.Rand().Intn(t.totalCum)
			for class < len(t.cum)-1 && pick >= t.cum[class] {
				class++
			}
		}
		f.offer(k, p.Now(), tenant, class, false)
	}
	f.gensLive--
	f.checkDone(k)
}

// offer presents one arrival to admission, waking an idle dispatcher on
// success and scheduling at most one client retry on shed.
func (f *Frontend) offer(k *simnet.Kernel, now simnet.Time, tenant, class int, retried bool) {
	if retried {
		f.tenants[tenant].Retries++
	}
	r, v, retryAfter := f.Admit(now, tenant, class)
	if v == Admitted {
		r.Retried = retried
		if !f.work.Empty() {
			f.work.WakeAll(k)
		}
		return
	}
	if f.cfg.Retry && !retried {
		f.pendingRetries++
		k.CallAfter(retryAfter, func() {
			f.pendingRetries--
			f.offer(k, k.Now(), tenant, class, true)
			f.checkDone(k)
		})
	}
}

// checkDone completes the experiment future once everything drained, and
// wakes parked dispatchers so they observe Drained and exit.
func (f *Frontend) checkDone(k *simnet.Kernel) {
	if f.done != nil && !f.done.Done() && f.Drained() {
		f.done.Complete(struct{}{})
		f.work.WakeAll(k)
		if f.el != nil {
			// Slots gated on out-of-rotation nodes observe done and exit.
			f.el.wakeGates(k)
		}
	}
}

// dispatchLoop is one dispatcher thread on node 0: it pulls WFQ batches from
// the frontend and drives them through node 0's device scheduler, parking
// when the frontend is empty. Remote nodes are driven by proxyLoop instead.
func (f *Frontend) dispatchLoop(ctx *satin.Context) {
	p := ctx.Proc()
	k := p.Kernel()
	buf := make([]*Request, 0, f.cfg.MaxBatch)
	kernels := map[string]*core.Kernel{}
	for {
		buf = f.NextBatch(p.Now(), buf[:0])
		if len(buf) == 0 {
			if f.Drained() {
				f.checkDone(k)
				return
			}
			f.work.Park(p)
			continue
		}
		f.runBatch(ctx, kernels, buf)
		f.checkDone(k)
	}
}

// runBatch executes one coalesced batch as a single kernel launch on node 0
// (the dispatcher's node; remote execution goes through nodeServer.run).
func (f *Frontend) runBatch(ctx *satin.Context, kernels map[string]*core.Kernel, batch []*Request) {
	t := &f.tenants[batch[0].Tenant]
	class := &t.spec.Mix[batch[0].Class]
	p := ctx.Proc()

	if class.Graph != nil {
		// Graph classes never batch (validated in Run): one request, one
		// full-DAG run through the node's graph scheduler.
		err := core.RunGraph(ctx, class.Graph)
		now := p.Now()
		if f.rec.Enabled() {
			for _, r := range batch {
				f.rec.Add(trace.Span{
					Node: ctx.NodeID(), Queue: "serve", Kind: KindServe,
					Label: t.spec.Name + "/" + class.Name,
					Start: r.Arrive, End: now,
					Attrs: []trace.Attr{trace.Int64Attr("wait_ns", int64(r.Issue-r.Arrive))},
				})
			}
		}
		for _, r := range batch {
			f.Complete(now, r, err == nil)
		}
		return
	}

	kern := kernels[class.Kernel]
	if kern == nil {
		var err error
		kern, err = core.GetKernel(ctx, class.Kernel)
		if err != nil {
			now := p.Now()
			for _, r := range batch {
				f.Complete(now, r, false)
			}
			return
		}
		kernels[class.Kernel] = kern
	}

	n := int64(len(batch))
	params := class.Params
	if n > 1 {
		scaled := make(map[string]int64, len(params))
		for name, v := range params {
			scaled[name] = v
		}
		scaled[class.BatchParam] *= n
		params = scaled
	}

	err := kern.NewLaunch(core.LaunchSpec{
		Params:  params,
		InBytes: class.InBytes * n, OutBytes: class.OutBytes * n,
		Label: class.Name,
	}).Run(ctx)

	now := p.Now()
	if f.rec.Enabled() {
		bsz := trace.Int64Attr("batch", n)
		for _, r := range batch {
			f.rec.Add(trace.Span{
				Node: ctx.NodeID(), Queue: "serve", Kind: KindServe,
				Label: t.spec.Name + "/" + class.Name,
				Start: r.Arrive, End: now,
				Attrs: []trace.Attr{bsz, trace.Int64Attr("wait_ns", int64(r.Issue-r.Arrive))},
			})
		}
	}
	for _, r := range batch {
		f.Complete(now, r, err == nil)
	}
}

// TenantReport is the per-tenant slice of a serving report.
type TenantReport struct {
	Name         string
	Offered      int64
	Admitted     int64
	ShedThrottle int64
	ShedQueue    int64
	Retries      int64
	Completed    int64
	Errors       int64
	SLOOk        int64
	MaxQueue     int
	P50, P95     int64 // ns
	P99, Mean    int64 // ns
	Max          int64 // ns
}

// ElasticReport is the capacity slice of a serving report, present when the
// autoscaler or the chaos harness ran.
type ElasticReport struct {
	// NodeSeconds is the provisioned node-time integral: every node bills
	// while Active, Draining or Suspended; Parked and Dead nodes are free.
	NodeSeconds float64
	// StaticNodeSeconds is the fixed-fleet baseline, nodes × elapsed.
	StaticNodeSeconds float64
	ScaleOuts         int64
	ScaleIns          int64
	// DrainsForced counts scale-in drains whose grace expired with a batch
	// still in flight (aborted and re-queued).
	DrainsForced int64
	// Migrated counts requests re-queued off drained/suspended/failed nodes;
	// none of them is lost or double-counted.
	Migrated int64
	// Suspends/Crashes count nodes taken out by the failure detector
	// (partition suspensions are transient, crashes terminal).
	Suspends int64
	Crashes  int64
}

// Report is the outcome of one serving experiment.
type Report struct {
	Horizon simnet.Duration
	Elapsed simnet.Time

	Tenants []TenantReport

	Offered      int64
	Admitted     int64
	ShedThrottle int64
	ShedQueue    int64
	Retries      int64
	Completed    int64
	Errors       int64
	SLOOk        int64
	Batches      int64
	BatchedReqs  int64
	MaxDepth     int

	P50, P95, P99, Mean, Max int64 // ns

	// OfferedRPS/ThroughputRPS/GoodputRPS are rates over the arrival
	// horizon in virtual time.
	OfferedRPS    float64
	ThroughputRPS float64
	GoodputRPS    float64
	// ShedFraction is sheds (both causes, net of successful retries)
	// over offered arrivals.
	ShedFraction float64

	// Elastic is the capacity slice (nil for fixed fleets).
	Elastic *ElasticReport
}

// report assembles the Report from the frontend's accounting.
func (f *Frontend) report(cfg Config, end simnet.Time) *Report {
	r := &Report{
		Horizon: cfg.Horizon,
		Elapsed: end,
		P50:     f.Hist.Quantile(0.50),
		P95:     f.Hist.Quantile(0.95),
		P99:     f.Hist.Quantile(0.99),
		Mean:    f.Hist.Mean(),
		Max:     f.Hist.Max(),
	}
	r.Batches = f.Batches
	r.BatchedReqs = f.BatchedReqs
	r.MaxDepth = f.maxDepth
	for i := range f.tenants {
		t := &f.tenants[i]
		tr := TenantReport{
			Name:         t.spec.Name,
			Offered:      t.Offered,
			Admitted:     t.Admitted,
			ShedThrottle: t.ShedThrottle,
			ShedQueue:    t.ShedQueue,
			Retries:      t.Retries,
			Completed:    t.Completed,
			Errors:       t.Errors,
			SLOOk:        t.SLOOk,
			MaxQueue:     t.MaxQueue,
			P50:          t.Hist.Quantile(0.50),
			P95:          t.Hist.Quantile(0.95),
			P99:          t.Hist.Quantile(0.99),
			Mean:         t.Hist.Mean(),
			Max:          t.Hist.Max(),
		}
		r.Tenants = append(r.Tenants, tr)
		r.Offered += tr.Offered
		r.Admitted += tr.Admitted
		r.ShedThrottle += tr.ShedThrottle
		r.ShedQueue += tr.ShedQueue
		r.Retries += tr.Retries
		r.Completed += tr.Completed
		r.Errors += tr.Errors
		r.SLOOk += tr.SLOOk
	}
	secs := simnet.Time(cfg.Horizon).Seconds()
	if secs > 0 {
		r.OfferedRPS = float64(r.Offered) / secs
		r.ThroughputRPS = float64(r.Completed) / secs
		r.GoodputRPS = float64(r.SLOOk) / secs
	}
	if r.Offered > 0 {
		r.ShedFraction = float64(r.ShedThrottle+r.ShedQueue) / float64(r.Offered)
	}
	if el := f.el; el != nil {
		r.Elastic = &ElasticReport{
			NodeSeconds:       el.nodeSeconds(end),
			StaticNodeSeconds: float64(len(el.nodes)) * end.Seconds(),
			ScaleOuts:         el.ScaleOuts,
			ScaleIns:          el.ScaleIns,
			DrainsForced:      el.DrainsForced,
			Migrated:          el.Migrated,
			Suspends:          el.Suspends,
			Crashes:           el.Crashes,
		}
	}
	return r
}

// FillMetrics exports the report into the flat metrics set under the
// "serve." prefix, so the serving layer shows up in the CollectMetrics
// dump next to the simulator, network and device statistics.
func (r *Report) FillMetrics(m *trace.Metrics) {
	m.SetInt("serve.offered", r.Offered)
	m.SetInt("serve.admitted", r.Admitted)
	m.SetInt("serve.shed_throttle", r.ShedThrottle)
	m.SetInt("serve.shed_queue", r.ShedQueue)
	m.SetInt("serve.retries", r.Retries)
	m.SetInt("serve.completed", r.Completed)
	m.SetInt("serve.errors", r.Errors)
	m.SetInt("serve.slo_ok", r.SLOOk)
	m.SetInt("serve.batches", r.Batches)
	m.SetInt("serve.batched_requests", r.BatchedReqs)
	m.SetInt("serve.max_queue_depth", int64(r.MaxDepth))
	m.SetInt("serve.p50_ns", r.P50)
	m.SetInt("serve.p95_ns", r.P95)
	m.SetInt("serve.p99_ns", r.P99)
	m.SetInt("serve.mean_ns", r.Mean)
	m.SetInt("serve.max_ns", r.Max)
	m.SetFloat("serve.offered_rps", r.OfferedRPS, "req/s")
	m.SetFloat("serve.throughput_rps", r.ThroughputRPS, "req/s")
	m.SetFloat("serve.goodput_rps", r.GoodputRPS, "req/s")
	m.SetFloat("serve.shed_fraction", r.ShedFraction, "")
	if e := r.Elastic; e != nil {
		m.SetFloat("serve.node_seconds", e.NodeSeconds, "s")
		m.SetFloat("serve.static_node_seconds", e.StaticNodeSeconds, "s")
		m.SetInt("serve.scale_outs", e.ScaleOuts)
		m.SetInt("serve.scale_ins", e.ScaleIns)
		m.SetInt("serve.drains_forced", e.DrainsForced)
		m.SetInt("serve.migrated", e.Migrated)
		m.SetInt("serve.suspends", e.Suspends)
		m.SetInt("serve.node_crashes", e.Crashes)
	}
	for _, t := range r.Tenants {
		p := "serve.tenant." + t.Name
		m.SetInt(p+".offered", t.Offered)
		m.SetInt(p+".admitted", t.Admitted)
		m.SetInt(p+".shed_throttle", t.ShedThrottle)
		m.SetInt(p+".shed_queue", t.ShedQueue)
		m.SetInt(p+".retries", t.Retries)
		m.SetInt(p+".completed", t.Completed)
		m.SetInt(p+".errors", t.Errors)
		m.SetInt(p+".slo_ok", t.SLOOk)
		m.SetInt(p+".max_queue", int64(t.MaxQueue))
		m.SetInt(p+".p50_ns", t.P50)
		m.SetInt(p+".p95_ns", t.P95)
		m.SetInt(p+".p99_ns", t.P99)
	}
}

// Format renders the report as a fixed-order text table (byte-stable for
// a given trajectory).
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== serve: %v horizon, drained at %v ==\n", simnet.Duration(r.Horizon), r.Elapsed)
	fmt.Fprintf(&b, "offered %d (%.6g req/s)  admitted %d  shed %d+%d (%.4g%%)  retries %d\n",
		r.Offered, r.OfferedRPS, r.Admitted, r.ShedThrottle, r.ShedQueue, 100*r.ShedFraction, r.Retries)
	fmt.Fprintf(&b, "completed %d (%.6g req/s)  goodput %.6g req/s  errors %d  batches %d (coalesced %d)  max depth %d\n",
		r.Completed, r.ThroughputRPS, r.GoodputRPS, r.Errors, r.Batches, r.BatchedReqs, r.MaxDepth)
	fmt.Fprintf(&b, "latency p50 %v  p95 %v  p99 %v  mean %v  max %v\n",
		simnet.Duration(r.P50), simnet.Duration(r.P95), simnet.Duration(r.P99),
		simnet.Duration(r.Mean), simnet.Duration(r.Max))
	if e := r.Elastic; e != nil {
		fmt.Fprintf(&b, "elastic node-seconds %.6g (static %.6g)  scale-out %d  scale-in %d  forced %d  migrated %d  suspends %d  crashes %d\n",
			e.NodeSeconds, e.StaticNodeSeconds, e.ScaleOuts, e.ScaleIns,
			e.DrainsForced, e.Migrated, e.Suspends, e.Crashes)
	}
	fmt.Fprintf(&b, "%-14s %9s %9s %9s %9s %8s %9s %7s %12s %12s %12s\n",
		"tenant", "offered", "admitted", "shed", "complete", "errors", "slo_ok", "maxq", "p50", "p95", "p99")
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "%-14s %9d %9d %9d %9d %8d %9d %7d %12v %12v %12v\n",
			t.Name, t.Offered, t.Admitted, t.ShedThrottle+t.ShedQueue, t.Completed,
			t.Errors, t.SLOOk, t.MaxQueue,
			simnet.Duration(t.P50), simnet.Duration(t.P95), simnet.Duration(t.P99))
	}
	return b.String()
}
