package serve

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"cashmere/internal/simnet"
)

// Trace replay: a fourth workload source alongside Poisson/MMPP/diurnal.
// A tenant with ArrivalSpec.Kind == Replay offers requests at the exact
// offsets of an explicit schedule instead of drawing gaps from the
// simulation RNG — the tool for replaying production arrival logs, for
// regression workloads that must not shift when unrelated RNG draws move,
// and for adversarial schedules no stochastic process would produce.

// TraceEvent is one arrival of a replay schedule.
type TraceEvent struct {
	// At is the arrival time as an offset from the start of the run (or of
	// the current tile when the trace repeats).
	At simnet.Duration
	// Class is the index into the tenant's Mix (out-of-range clamps to 0).
	Class int
}

// replay is the Replay-kind arrival loop: offer each trace event at its
// offset, tiling the schedule every TracePeriod when set, until the
// horizon.
func (f *Frontend) replay(p *simnet.Proc, tenant int) {
	k := p.Kernel()
	spec := &f.cfg.Tenants[tenant]
	t := &f.tenants[tenant]
	horizon := simnet.Time(f.cfg.Horizon)
	events := spec.Arrival.Trace
	if len(events) == 0 {
		return
	}
	period := spec.Arrival.TracePeriod
	base := simnet.Time(0)
	for {
		for _, ev := range events {
			at := base.Add(ev.At)
			if at > horizon {
				return
			}
			if at > p.Now() {
				p.HoldUntil(at)
			}
			class := ev.Class
			if class < 0 || class >= len(t.costs) {
				class = 0
			}
			f.offer(k, p.Now(), tenant, class, false)
		}
		if period <= 0 {
			return
		}
		base = base.Add(period)
		if base > horizon {
			return
		}
	}
}

// ParseTrace reads the text trace format: one arrival per line as
// "<tenant> <offset_ns> <class>", with blank lines and '#' comments
// ignored. Events are sorted by offset per tenant.
func ParseTrace(r io.Reader) (map[string][]TraceEvent, error) {
	out := map[string][]TraceEvent{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		var name string
		var off, class int64
		if _, err := fmt.Sscanf(s, "%s %d %d", &name, &off, &class); err != nil {
			return nil, fmt.Errorf("serve: trace line %d: %v", line, err)
		}
		if off < 0 {
			return nil, fmt.Errorf("serve: trace line %d: negative offset", line)
		}
		out[name] = append(out[name], TraceEvent{At: simnet.Duration(off), Class: int(class)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, evs := range out {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	}
	return out, nil
}

// FormatTrace renders per-tenant traces in the ParseTrace text format,
// tenants in name order (byte-stable for a given input).
func FormatTrace(traces map[string][]TraceEvent) string {
	names := make([]string, 0, len(traces))
	for name := range traces {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("# tenant offset_ns class\n")
	for _, name := range names {
		for _, ev := range traces[name] {
			fmt.Fprintf(&b, "%s %d %d\n", name, int64(ev.At), ev.Class)
		}
	}
	return b.String()
}

// SynthesizeTrace draws a Poisson arrival schedule per tenant from a
// private RNG (fully determined by seed, independent of the simulation
// streams), with classes drawn at the tenant's mix weights. It is the
// source of cashmere-serve's "-replay synth" mode and of replay tests that
// need a non-trivial schedule without a log file.
func SynthesizeTrace(tenants []TenantSpec, horizon simnet.Duration, seed int64) map[string][]TraceEvent {
	out := map[string][]TraceEvent{}
	for ti := range tenants {
		t := &tenants[ti]
		rate := t.Arrival.RatePerSec / 1e9
		if rate <= 0 {
			continue
		}
		rng := rand.New(rand.NewSource(seed + int64(ti+1)*912_367_983))
		var cum []int
		total := 0
		for _, c := range t.Mix {
			w := c.Weight
			if w < 1 {
				w = 1
			}
			total += w
			cum = append(cum, total)
		}
		var evs []TraceEvent
		at := 0.0
		for {
			at += rng.ExpFloat64() / rate
			if at >= float64(horizon) {
				break
			}
			class := 0
			if total > 1 {
				pick := rng.Intn(total)
				for class < len(cum)-1 && pick >= cum[class] {
					class++
				}
			}
			evs = append(evs, TraceEvent{At: simnet.Duration(at), Class: class})
		}
		out[t.Name] = evs
	}
	return out
}

// ApplyTrace switches every tenant named in traces to Replay arrivals with
// the given tiling period (0 plays each trace once). Trace names that match
// no tenant are an error.
func (w *Workload) ApplyTrace(traces map[string][]TraceEvent, period simnet.Duration) error {
	known := map[string]int{}
	for i := range w.Tenants {
		known[w.Tenants[i].Name] = i
	}
	var unknown []string
	for name := range traces {
		if _, ok := known[name]; !ok {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("serve: trace names unknown tenant %q", unknown[0])
	}
	for name, evs := range traces {
		t := &w.Tenants[known[name]]
		t.Arrival.Kind = Replay
		t.Arrival.Trace = evs
		t.Arrival.TracePeriod = period
	}
	return nil
}
