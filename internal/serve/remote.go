package serve

import (
	"cashmere/internal/core"
	"cashmere/internal/network"
	"cashmere/internal/satin"
	"cashmere/internal/simnet"
	"cashmere/internal/trace"
)

// Remote dispatch protocol. The frontend and all its state live on node 0;
// work reaches the other nodes' device schedulers through the satin message
// layer, never through shared memory, so a partitioned simulation can spread
// the nodes over parallel event loops:
//
//   - one proxy dispatcher per remote dispatcher slot runs on node 0: it
//     pulls WFQ batches exactly like a local dispatcher, ships each batch to
//     its node as a "serve_batch" message sized with the batch input bytes,
//     and waits for the reply before pulling the next batch (one batch in
//     flight per slot, matching a local dispatcher's occupancy);
//   - the remote node's comm loop hands the message to a pooled process
//     that runs the coalesced launch through the node's device scheduler and
//     replies "serve_done" sized with the output bytes;
//   - the proxy completes the batch's requests when the reply arrives, so
//     latency includes both network crossings.
//
// The same protocol runs in every partition layout (including the single
// sequential kernel), which keeps trajectories byte-identical across
// -partitions values.

// kindBatch/kindDone are the satin message kinds of the protocol.
const (
	kindBatch = "serve_batch"
	kindDone  = "serve_done"
)

type batchMsg struct {
	Proxy         int // reply routing key (index into dispatch.replies)
	Tenant, Class int
	N             int64
	// Epoch is the sending slot's per-batch sequence number; the server
	// echoes it so the proxy can discard replies to batches it has already
	// settled (e.g. completed remotely after the elastic controller aborted
	// and re-queued them).
	Epoch int64
}

type batchDone struct {
	Proxy int
	OK    bool
	Epoch int64
	// Aborted marks an elastic-controller sentinel, not a server reply: the
	// slot's node left rotation with this batch in flight, so the proxy must
	// re-queue it instead of completing it.
	Aborted bool
}

// slotState is node-0 bookkeeping for one proxy dispatcher slot, read by
// the elastic controller to find batches in flight to a departing node.
type slotState struct {
	node int
	busy bool
	seq  int64
}

// nodeServer is the remote half of the protocol on one node: its compiled-
// kernel cache is touched only by that node's processes.
type nodeServer struct {
	kernels map[string]*core.Kernel
}

// dispatch wires the frontend to the cluster's nodes. Node 0 reads
// everything; remote nodes only ever touch their own nodeServer.
type dispatch struct {
	fe      *Frontend
	cfg     Config
	servers []*nodeServer             // index = node id (nil for node 0)
	replies []*simnet.Chan[batchDone] // index = proxy id; node-0 state
	slots   []slotState               // index = proxy id; node-0 state
}

func newDispatch(fe *Frontend, cfg Config, rt *satin.Runtime) *dispatch {
	d := &dispatch{fe: fe, cfg: cfg, servers: make([]*nodeServer, rt.Nodes())}
	for n := 1; n < rt.Nodes(); n++ {
		d.servers[n] = &nodeServer{kernels: map[string]*core.Kernel{}}
	}
	return d
}

// newProxy registers a reply channel for one proxy dispatcher slot serving
// the given node and returns its id. Must be called before the simulation
// starts (node-0 state).
func (d *dispatch) newProxy(k *simnet.Kernel, node int) int {
	d.replies = append(d.replies, simnet.NewChan[batchDone](k))
	d.slots = append(d.slots, slotState{node: node})
	return len(d.replies) - 1
}

// handle is the satin message handler: it serves batch requests on remote
// nodes and routes replies back to the waiting proxy on node 0.
func (d *dispatch) handle(ctx *satin.Context, m network.Message) bool {
	switch m.Kind {
	case kindBatch:
		bm := m.Payload.(batchMsg)
		srv := d.servers[ctx.NodeID()]
		ctx.Node().GoLocal(func(c *satin.Context) {
			ok := srv.run(c, d.cfg, bm)
			class := &d.cfg.Tenants[bm.Tenant].Mix[bm.Class]
			c.Runtime().Fabric().Endpoint(c.NodeID()).
				Send(c.Proc(), 0, kindDone, class.OutBytes*bm.N,
					batchDone{Proxy: bm.Proxy, OK: ok, Epoch: bm.Epoch})
		})
		return true
	case kindDone:
		bd := m.Payload.(batchDone)
		d.replies[bd.Proxy].Send(bd)
		return true
	}
	return false
}

// run executes one coalesced batch on the server's node.
func (s *nodeServer) run(ctx *satin.Context, cfg Config, bm batchMsg) bool {
	class := &cfg.Tenants[bm.Tenant].Mix[bm.Class]
	if class.Graph != nil {
		// One request = one full-DAG run; the node caches the instantiated
		// graph (and its workspace) across requests via GetGraph.
		return core.RunGraph(ctx, class.Graph) == nil
	}
	kern := s.kernels[class.Kernel]
	if kern == nil {
		var err error
		kern, err = core.GetKernel(ctx, class.Kernel)
		if err != nil {
			return false
		}
		s.kernels[class.Kernel] = kern
	}
	params := class.Params
	if bm.N > 1 {
		scaled := make(map[string]int64, len(params))
		for name, v := range params {
			scaled[name] = v
		}
		scaled[class.BatchParam] *= bm.N
		params = scaled
	}
	err := kern.NewLaunch(core.LaunchSpec{
		Params:  params,
		InBytes: class.InBytes * bm.N, OutBytes: class.OutBytes * bm.N,
		Label: class.Name,
	}).Run(ctx)
	return err == nil
}

// proxyLoop is a node-0 dispatcher slot for a remote node: same WFQ pull as
// dispatchLoop, but execution happens across the network. Under elastic
// control the slot parks on its node's gate while the node is out of
// rotation, and an in-flight batch can be aborted by a sentinel reply —
// the epoch filter discards the server's late real reply (or a stale
// sentinel) so each batch settles exactly once.
func (d *dispatch) proxyLoop(ctx *satin.Context, node, proxy int) {
	f := d.fe
	p := ctx.Proc()
	k := p.Kernel()
	ep := ctx.Runtime().Fabric().Endpoint(0)
	reply := d.replies[proxy]
	slot := &d.slots[proxy]
	buf := make([]*Request, 0, f.cfg.MaxBatch)
	for {
		if f.el != nil {
			for !f.el.isActive(node) {
				if f.done != nil && f.done.Done() {
					return
				}
				f.el.nodes[node].gate.Park(p)
			}
		}
		buf = f.NextBatch(p.Now(), buf[:0])
		if len(buf) == 0 {
			if f.Drained() {
				f.checkDone(k)
				return
			}
			f.work.Park(p)
			continue
		}
		r0 := buf[0]
		t := &f.tenants[r0.Tenant]
		class := &t.spec.Mix[r0.Class]
		n := int64(len(buf))
		slot.seq++
		slot.busy = true
		ep.Send(p, node, kindBatch, class.InBytes*n,
			batchMsg{Proxy: proxy, Tenant: r0.Tenant, Class: r0.Class, N: n, Epoch: slot.seq})
		for {
			bd := reply.Recv(p)
			if bd.Epoch != slot.seq {
				continue // reply to a batch already settled; drop
			}
			now := p.Now()
			if bd.Aborted {
				f.requeue(now, buf)
				if !f.work.Empty() {
					f.work.WakeAll(k)
				}
				break
			}
			if f.rec.Enabled() {
				bsz := trace.Int64Attr("batch", n)
				for _, r := range buf {
					f.rec.Add(trace.Span{
						Node: node, Queue: "serve", Kind: KindServe,
						Label: t.spec.Name + "/" + class.Name,
						Start: r.Arrive, End: now,
						Attrs: []trace.Attr{bsz, trace.Int64Attr("wait_ns", int64(r.Issue-r.Arrive))},
					})
				}
			}
			for _, r := range buf {
				f.Complete(now, r, bd.OK)
			}
			break
		}
		slot.busy = false
		f.checkDone(k)
	}
}
