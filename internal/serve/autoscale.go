package serve

import (
	"time"

	"cashmere/internal/satin"
	"cashmere/internal/simnet"
)

// AutoscaleConfig tunes the elastic autoscaler. The controller runs on node
// 0 every Interval and reads two signals: the queue depth per active
// dispatcher slot and the p99 latency over the last interval (a windowed
// reading of the log-bucketed histogram, so it tracks the current regime
// rather than run-wide history). Hysteresis comes from consecutive-tick
// thresholds plus a cooldown after every action, so a single burst neither
// flaps the fleet up nor a quiet tick flaps it down.
type AutoscaleConfig struct {
	// Min/Max bound the Active node count. Zero Max means every node of the
	// cluster; Min is clamped to at least 1 (node 0 never leaves rotation).
	Min, Max int
	// Initial is the Active node count at start (0 means Max); the rest of
	// the fleet starts Parked.
	Initial int
	// Interval is the control period (default 10ms of virtual time).
	Interval simnet.Duration
	// HighQueuePerSlot scales out when queued/activeSlots exceeds it.
	HighQueuePerSlot float64
	// LowQueuePerSlot is the scale-in ceiling on queued/activeSlots.
	LowQueuePerSlot float64
	// P99Factor scales out when the windowed p99 exceeds P99Factor×SLO;
	// scale-in additionally requires p99 below half that bar.
	P99Factor float64
	// UpTicks/DownTicks are the consecutive hot/cold intervals required
	// before acting (hysteresis).
	UpTicks, DownTicks int
	// Cooldown is the minimum gap between scaling actions.
	Cooldown simnet.Duration
	// DrainGrace bounds a scale-in drain: batches still in flight when it
	// expires are aborted and re-queued onto the remaining fleet.
	DrainGrace simnet.Duration
}

// DefaultAutoscale returns the controller tuning used by cashmere-serve
// and the autoscale sweep.
func DefaultAutoscale() *AutoscaleConfig {
	return &AutoscaleConfig{
		Min:              1,
		Interval:         10 * time.Millisecond,
		HighQueuePerSlot: 3,
		LowQueuePerSlot:  0.5,
		P99Factor:        0.9,
		UpTicks:          2,
		DownTicks:        6,
		Cooldown:         40 * time.Millisecond,
		DrainGrace:       10 * time.Millisecond,
	}
}

// norm clamps the configuration to a cluster of n nodes and fills defaults.
func (a AutoscaleConfig) norm(n int) AutoscaleConfig {
	if a.Max <= 0 || a.Max > n {
		a.Max = n
	}
	if a.Min < 1 {
		a.Min = 1
	}
	if a.Min > a.Max {
		a.Min = a.Max
	}
	if a.Initial <= 0 {
		a.Initial = a.Max
	}
	if a.Initial < a.Min {
		a.Initial = a.Min
	}
	if a.Initial > a.Max {
		a.Initial = a.Max
	}
	if a.Interval <= 0 {
		a.Interval = 10 * time.Millisecond
	}
	if a.HighQueuePerSlot <= 0 {
		a.HighQueuePerSlot = 3
	}
	if a.LowQueuePerSlot <= 0 {
		a.LowQueuePerSlot = 0.5
	}
	if a.P99Factor <= 0 {
		a.P99Factor = 0.9
	}
	if a.UpTicks < 1 {
		a.UpTicks = 2
	}
	if a.DownTicks < 1 {
		a.DownTicks = 6
	}
	if a.Cooldown < 0 {
		a.Cooldown = 0
	}
	if a.DrainGrace <= 0 {
		a.DrainGrace = 10 * time.Millisecond
	}
	return a
}

// lowestParked returns the lowest-id Parked node, or -1. Scale-out prefers
// low ids and scale-in sheds high ids so the fleet contracts and expands at
// the same end — a deterministic, layout-invariant policy.
func (el *elastic) lowestParked() int {
	for i := 1; i < len(el.nodes); i++ {
		if el.nodes[i].phase == phaseParked {
			return i
		}
	}
	return -1
}

// highestActive returns the highest-id Active node other than 0, or -1.
func (el *elastic) highestActive() int {
	for i := len(el.nodes) - 1; i >= 1; i-- {
		if el.nodes[i].phase == phaseActive {
			return i
		}
	}
	return -1
}

// autoscaleLoop is the controller process (runs on node 0 inside the
// simulation; exits once the experiment drains).
func (el *elastic) autoscaleLoop(ctx *satin.Context, cfg AutoscaleConfig) {
	f := el.f
	p := ctx.Proc()
	k := p.Kernel()
	prev := f.Hist.Snapshot()
	hi := int64(float64(f.cfg.SLO) * cfg.P99Factor)
	lo := hi / 2
	var up, down int
	var lastAction simnet.Time
	acted := false
	for {
		p.Hold(cfg.Interval)
		if f.done.Done() {
			return
		}
		now := p.Now()
		win := f.Hist.Delta(&prev)
		prev = f.Hist.Snapshot()
		p99 := win.Quantile(0.99)
		slots := el.activeSlots
		if slots < 1 {
			slots = 1
		}
		qps := float64(f.queued) / float64(slots)
		hot := qps > cfg.HighQueuePerSlot || p99 > hi
		cold := qps < cfg.LowQueuePerSlot && p99 < lo
		switch {
		case hot:
			up, down = up+1, 0
		case cold:
			up, down = 0, down+1
		default:
			up, down = 0, 0
		}
		if acted && now-lastAction < simnet.Time(cfg.Cooldown) {
			continue
		}
		if up >= cfg.UpTicks && el.activeNodes < cfg.Max {
			if n := el.lowestParked(); n >= 0 {
				el.activate(k, now, n)
				// The node may have been satin-drained on its way out; let
				// its workers steal again.
				el.rt.UndrainAsync(p, n)
				el.ScaleOuts++
				f.rec.CounterAdd(0, "serve.scale_out", now, 1)
				lastAction, acted, up = now, true, 0
			}
		} else if down >= cfg.DownTicks && el.activeNodes > cfg.Min {
			if n := el.highestActive(); n >= 0 {
				el.beginDrain(p, now, n, cfg.DrainGrace)
				lastAction, acted, down = now, true, 0
			}
		}
	}
}
