package serve

import (
	"cashmere/internal/satin"
	"cashmere/internal/simnet"
)

// Elastic capacity control. The frontend owns a per-node phase machine on
// node 0 (all of it is node-0 state, mutated only by node-0 processes, so
// it is partition-safe by construction):
//
//	Active ──drain──▶ Draining ──grace──▶ Parked ──scale-out──▶ Active
//	Active ──partition──▶ Suspended ──heal──▶ Active
//	any ──crash──▶ Dead (terminal)
//
// Dispatcher slots of a node that is not Active park on the node's gate;
// a batch in flight when the node leaves Active is aborted through a
// sentinel reply and its requests are re-queued at the front of their
// tenant queue with the WFQ charge refunded, so a drained or failed node
// never loses a request. Node 0 hosts the frontend and is always Active.
//
// Billing: a node accrues node-seconds while provisioned — Active,
// Draining or Suspended (a partitioned node is still powered). Parked and
// Dead nodes are free. The autoscale sweep compares this integral against
// the static fleet's nodes × elapsed.

// nodePhase is the elastic state of one node.
type nodePhase uint8

const (
	phaseActive nodePhase = iota
	phaseDraining
	phaseSuspended
	phaseParked
	phaseDead
)

// nodeSlot is the frontend's elastic state for one node.
type nodeSlot struct {
	phase   nodePhase
	gate    simnet.WaitList // dispatcher slots park here while not Active
	slots   int             // dispatcher slots on this node
	onSince simnet.Time     // start of the current billed interval
	onNS    int64           // accumulated billed virtual time
}

func (ph nodePhase) billed() bool {
	return ph == phaseActive || ph == phaseDraining || ph == phaseSuspended
}

// elastic is the node-0 capacity controller shared by the autoscaler and
// the chaos harness.
type elastic struct {
	f  *Frontend
	d  *dispatch
	rt *satin.Runtime

	nodes       []nodeSlot
	activeNodes int
	totalSlots  int
	activeSlots int

	// Accounting (surfaced through ElasticReport).
	ScaleOuts    int64
	ScaleIns     int64
	DrainsForced int64
	Suspends     int64
	Crashes      int64
	Migrated     int64 // requests re-queued off drained/suspended/failed nodes
}

// newElastic builds the controller with nodes [0, initialActive) Active and
// the rest Parked. slotsOf reports the dispatcher-slot count of a node.
func newElastic(f *Frontend, d *dispatch, rt *satin.Runtime, slotsOf func(int) int, initialActive int) *elastic {
	n := rt.Nodes()
	if initialActive < 1 {
		initialActive = 1
	}
	if initialActive > n {
		initialActive = n
	}
	el := &elastic{f: f, d: d, rt: rt, nodes: make([]nodeSlot, n)}
	for i := range el.nodes {
		ns := &el.nodes[i]
		ns.slots = slotsOf(i)
		el.totalSlots += ns.slots
		if i < initialActive {
			ns.phase = phaseActive
			el.activeNodes++
			el.activeSlots += ns.slots
		} else {
			ns.phase = phaseParked
		}
	}
	f.el = el
	return el
}

// isActive gates dispatcher slots.
func (el *elastic) isActive(n int) bool { return el.nodes[n].phase == phaseActive }

// transition moves node n to phase to, maintaining active-slot counts and
// the node-seconds integral.
func (el *elastic) transition(now simnet.Time, n int, to nodePhase) {
	ns := &el.nodes[n]
	from := ns.phase
	if from == to {
		return
	}
	if from == phaseActive {
		el.activeNodes--
		el.activeSlots -= ns.slots
	}
	if to == phaseActive {
		el.activeNodes++
		el.activeSlots += ns.slots
	}
	if from.billed() && !to.billed() {
		ns.onNS += int64(now - ns.onSince)
	}
	if !from.billed() && to.billed() {
		ns.onSince = now
	}
	ns.phase = to
}

// nodeSeconds reports the provisioned node-time integral at time end.
func (el *elastic) nodeSeconds(end simnet.Time) float64 {
	var tot int64
	for i := range el.nodes {
		ns := &el.nodes[i]
		tot += ns.onNS
		if ns.phase.billed() {
			tot += int64(end - ns.onSince)
		}
	}
	return float64(tot) / 1e9
}

// scaleHint stretches a queue-overload retry-after hint by the fraction of
// dispatcher slots currently active: with half the fleet draining or down,
// the backlog drains half as fast, so clients should back off twice as
// long (capped like the throttle hint).
func (el *elastic) scaleHint(h simnet.Duration) simnet.Duration {
	if el.activeSlots >= el.totalSlots {
		return h
	}
	if el.activeSlots <= 0 {
		return maxRetryAfter
	}
	scaled := simnet.Duration(float64(h) * float64(el.totalSlots) / float64(el.activeSlots))
	if scaled > maxRetryAfter {
		scaled = maxRetryAfter
	}
	return scaled
}

// abortBusy sends an abort sentinel to every dispatcher slot of node n with
// a batch in flight, carrying the batch's epoch so the slot can match it
// against the send (stale sentinels and stale real replies are both dropped
// by the epoch filter). Returns the number of aborted slots.
func (el *elastic) abortBusy(n int) int {
	forced := 0
	for i := range el.d.slots {
		s := &el.d.slots[i]
		if s.node == n && s.busy {
			el.d.replies[i].Send(batchDone{Proxy: i, Aborted: true, Epoch: s.seq})
			forced++
		}
	}
	return forced
}

// activate brings a Parked node back into rotation (scale-out or chaos
// heal) and wakes its gated dispatcher slots.
func (el *elastic) activate(k *simnet.Kernel, now simnet.Time, n int) {
	el.transition(now, n, phaseActive)
	el.nodes[n].gate.WakeAll(k)
}

// beginDrain starts decommissioning node n: its slots stop pulling new
// batches, satin migrates its queued D&C work home, and after grace any
// batch still in flight is aborted and re-queued. Must run on a node-0
// process.
func (el *elastic) beginDrain(p *simnet.Proc, now simnet.Time, n int, grace simnet.Duration) {
	el.transition(now, n, phaseDraining)
	el.ScaleIns++
	el.f.rec.CounterAdd(0, "serve.scale_in", now, 1)
	el.rt.DrainAsync(p, n)
	k := p.Kernel()
	k.CallAfter(grace, func() { el.finishDrain(k, n) })
}

// finishDrain parks a draining node at the end of its grace period,
// forcing any still-running batch to abort and re-queue.
func (el *elastic) finishDrain(k *simnet.Kernel, n int) {
	if el.nodes[n].phase != phaseDraining {
		return // crashed or suspended meanwhile
	}
	now := k.Now()
	if el.abortBusy(n) > 0 {
		el.DrainsForced++
		el.f.rec.CounterAdd(0, "serve.drains_forced", now, 1)
	}
	el.transition(now, n, phaseParked)
}

// suspend takes an Active node out of rotation after the failure detector
// notices a network partition; in-flight batches are aborted so their
// requests re-dispatch to reachable nodes.
func (el *elastic) suspend(k *simnet.Kernel, n int) {
	if el.nodes[n].phase != phaseActive {
		return
	}
	now := k.Now()
	el.abortBusy(n)
	el.transition(now, n, phaseSuspended)
	el.Suspends++
	el.f.rec.CounterAdd(0, "serve.suspends", now, 1)
}

// resume returns a Suspended node to rotation once its links heal.
func (el *elastic) resume(k *simnet.Kernel, n int) {
	if el.nodes[n].phase != phaseSuspended {
		return
	}
	el.activate(k, k.Now(), n)
}

// fail marks a node Dead after the failure detector confirms a crash;
// in-flight batches are aborted and re-queued. Terminal.
func (el *elastic) fail(k *simnet.Kernel, n int) {
	if el.nodes[n].phase == phaseDead {
		return
	}
	now := k.Now()
	el.abortBusy(n)
	el.transition(now, n, phaseDead)
	el.Crashes++
	el.f.rec.CounterAdd(0, "serve.node_failed", now, 1)
}

// wakeGates wakes every gated dispatcher slot (called when the experiment
// completes so parked slots observe done and exit).
func (el *elastic) wakeGates(k *simnet.Kernel) {
	for i := range el.nodes {
		el.nodes[i].gate.WakeAll(k)
	}
}
