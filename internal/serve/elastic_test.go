package serve

import (
	"testing"
	"time"

	"cashmere/internal/core"
	"cashmere/internal/simnet"
)

// diurnalWorkload returns the standard workload with every tenant switched
// to in-phase diurnal arrivals — swing s gives a peak:trough ratio of
// (1+s)/(1-s) — at a mean of load × the full fleet's capacity.
func diurnalWorkload(t testing.TB, nodes int, load, swing float64, period time.Duration) *Workload {
	t.Helper()
	w, err := StandardWorkload(1)
	if err != nil {
		t.Fatal(err)
	}
	cap, err := w.CapacityRPS("gtx480", nodes)
	if err != nil {
		t.Fatal(err)
	}
	w.ScaleRates(load * cap)
	for i := range w.Tenants {
		a := &w.Tenants[i].Arrival
		a.Kind = Diurnal
		a.Period = period
		a.Swing = swing
	}
	return w
}

// runElastic runs one serving experiment with the given config mutation and
// returns the report plus the byte-comparable report+metrics dump.
func runElastic(t testing.TB, w *Workload, nodes, partitions int, seed int64, mut func(*Config)) (*Report, string) {
	t.Helper()
	ccfg := core.DefaultConfig(nodes, "gtx480")
	ccfg.Seed = seed
	ccfg.Partitions = partitions
	cl, err := core.NewCluster(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ks := range w.KernelSets {
		if err := cl.Register(ks); err != nil {
			t.Fatal(err)
		}
	}
	scfg := DefaultConfig(w)
	mut(&scfg)
	rep, err := Run(cl, scfg)
	if err != nil {
		t.Fatal(err)
	}
	m := cl.CollectMetrics()
	rep.FillMetrics(m)
	return rep, rep.Format() + m.Format()
}

// checkConservation asserts the accounting identities that make "no request
// is ever lost" checkable: every offered request is admitted or shed, and
// every admitted request completes (or errors) by drain time.
func checkConservation(t *testing.T, rep *Report) {
	t.Helper()
	if rep.Offered != rep.Admitted+rep.ShedThrottle+rep.ShedQueue {
		t.Fatalf("offered %d != admitted %d + sheds %d+%d",
			rep.Offered, rep.Admitted, rep.ShedThrottle, rep.ShedQueue)
	}
	if rep.Admitted != rep.Completed+rep.Errors {
		t.Fatalf("lost requests: admitted %d != completed %d + errors %d",
			rep.Admitted, rep.Completed, rep.Errors)
	}
}

// TestAutoscaleSavesNodeSecondsUnderDiurnalSwing drives a 5x diurnal swing
// (swing 2/3) through a 4-node fleet with the autoscaler holding a 2-node
// floor, and checks the two sides of the elasticity claim: node-seconds
// come in well under the static fleet, and goodput does not collapse.
func TestAutoscaleSavesNodeSecondsUnderDiurnalSwing(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	const nodes = 4
	w := diurnalWorkload(t, nodes, 0.7, 2.0/3, 300*time.Millisecond)
	rep, _ := runElastic(t, w, nodes, 1, 11, func(c *Config) {
		c.Horizon = 900 * time.Millisecond
		as := DefaultAutoscale()
		as.Min = 2
		as.Initial = 2
		as.DownTicks = 3
		as.Cooldown = 20 * time.Millisecond
		c.Autoscale = as
	})
	checkConservation(t, rep)
	e := rep.Elastic
	if e == nil {
		t.Fatal("autoscaled run produced no elastic report")
	}
	t.Logf("node-seconds %.4g / static %.4g (%.0f%%)  scale-out %d  scale-in %d  forced %d  migrated %d",
		e.NodeSeconds, e.StaticNodeSeconds, 100*e.NodeSeconds/e.StaticNodeSeconds,
		e.ScaleOuts, e.ScaleIns, e.DrainsForced, e.Migrated)
	t.Logf("completed %d  slo_ok %d (%.1f%%)  p99 %v",
		rep.Completed, rep.SLOOk, 100*float64(rep.SLOOk)/float64(rep.Completed),
		simnet.Duration(rep.P99))
	if e.NodeSeconds >= 0.85*e.StaticNodeSeconds {
		t.Fatalf("autoscaler saved too little: %.4g of %.4g static node-seconds",
			e.NodeSeconds, e.StaticNodeSeconds)
	}
	if e.ScaleOuts == 0 {
		t.Fatal("no scale-outs through a 5x swing from a 2-node floor")
	}
	if e.ScaleIns == 0 {
		t.Fatal("no scale-ins through a 5x swing")
	}
	if rep.Completed == 0 {
		t.Fatal("no completions")
	}
	if frac := float64(rep.SLOOk) / float64(rep.Completed); frac < 0.85 {
		t.Fatalf("SLO attainment collapsed to %.1f%% under autoscaling", 100*frac)
	}
}

// TestAutoscalePartitionLayoutIdentity asserts the determinism contract for
// autoscaled runs: report + metrics dumps are byte-identical at any
// -partitions count.
func TestAutoscalePartitionLayoutIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	const nodes = 4
	run := func(partitions int) string {
		w := diurnalWorkload(t, nodes, 0.45, 2.0/3, 200*time.Millisecond)
		_, dump := runElastic(t, w, nodes, partitions, 7, func(c *Config) {
			c.Horizon = 400 * time.Millisecond
			as := DefaultAutoscale()
			as.Min = 2
			as.Initial = 2
			c.Autoscale = as
		})
		return dump
	}
	seq := run(1)
	for _, parts := range []int{2, 4} {
		if got := run(parts); got != seq {
			t.Errorf("autoscaled run diverged at %d partitions:\n-- 1 --\n%s\n-- %d --\n%s",
				parts, seq, parts, got)
		}
	}
}

// TestChaosScriptedFaultsLoseNothing injects one of each fault kind on a
// fixed schedule — a straggler, a network partition, a crash — and checks
// that the frontend reroutes around all of them without losing a request.
func TestChaosScriptedFaultsLoseNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	const nodes = 4
	w, err := StandardWorkload(1)
	if err != nil {
		t.Fatal(err)
	}
	cap, err := w.CapacityRPS("gtx480", nodes)
	if err != nil {
		t.Fatal(err)
	}
	w.ScaleRates(0.4 * cap)
	script := []ChaosEvent{
		{At: simnet.Duration(40 * time.Millisecond), Kind: ChaosStraggler, Nodes: []int{1}, Dur: simnet.Duration(60 * time.Millisecond), Factor: 8},
		{At: simnet.Duration(60 * time.Millisecond), Kind: ChaosPartition, Nodes: []int{2}, Dur: simnet.Duration(40 * time.Millisecond)},
		{At: simnet.Duration(120 * time.Millisecond), Kind: ChaosCrash, Nodes: []int{3}},
	}
	rep, _ := runElastic(t, w, nodes, 1, 5, func(c *Config) {
		c.Horizon = 300 * time.Millisecond
		c.Chaos = &ChaosConfig{Seed: 1, Script: script}
	})
	checkConservation(t, rep)
	e := rep.Elastic
	if e == nil {
		t.Fatal("chaos run produced no elastic report")
	}
	t.Logf("suspends %d  crashes %d  migrated %d  completed %d  errors %d",
		e.Suspends, e.Crashes, e.Migrated, rep.Completed, rep.Errors)
	if e.Suspends != 1 {
		t.Fatalf("suspends = %d, want 1 (the scripted partition)", e.Suspends)
	}
	if e.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1 (the scripted crash)", e.Crashes)
	}
	if rep.Completed == 0 {
		t.Fatal("no completions under chaos")
	}
	// The dead node stays billed-dead and the fleet keeps serving: goodput
	// must not collapse (most completions still within SLO at 0.4 load).
	if frac := float64(rep.SLOOk) / float64(rep.Completed); frac < 0.7 {
		t.Fatalf("SLO attainment %.1f%% under scripted chaos at 0.4 load", 100*frac)
	}
}

// TestChaosPartitionLayoutIdentity asserts byte-identical trajectories for a
// generated chaos schedule across partition layouts — the property the CI
// chaos job enforces end to end.
func TestChaosPartitionLayoutIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	const nodes = 4
	run := func(partitions int) string {
		w, err := StandardWorkload(1)
		if err != nil {
			t.Fatal(err)
		}
		cap, err := w.CapacityRPS("gtx480", nodes)
		if err != nil {
			t.Fatal(err)
		}
		w.ScaleRates(0.4 * cap)
		_, dump := runElastic(t, w, nodes, partitions, 3, func(c *Config) {
			c.Horizon = 300 * time.Millisecond
			c.Chaos = DefaultChaos(3)
		})
		return dump
	}
	seq := run(1)
	for _, parts := range []int{2, 4} {
		if got := run(parts); got != seq {
			t.Errorf("chaos run diverged at %d partitions:\n-- 1 --\n%s\n-- %d --\n%s",
				parts, seq, parts, got)
		}
	}
}

// TestChaosWithAutoscaleConserves runs both controllers together — the
// autoscaler reshaping the fleet while faults land on it — and checks
// conservation plus determinism across repeats.
func TestChaosWithAutoscaleConserves(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	const nodes = 4
	run := func() (*Report, string) {
		w := diurnalWorkload(t, nodes, 0.45, 2.0/3, 200*time.Millisecond)
		return runElastic(t, w, nodes, 1, 9, func(c *Config) {
			c.Horizon = 400 * time.Millisecond
			as := DefaultAutoscale()
			as.Min = 2
			as.Initial = 2
			c.Autoscale = as
			cc := DefaultChaos(9)
			cc.CrashRate = 0 // keep capacity decisions to the autoscaler
			c.Chaos = cc
		})
	}
	rep, dump1 := run()
	checkConservation(t, rep)
	if rep.Elastic == nil {
		t.Fatal("no elastic report")
	}
	_, dump2 := run()
	if dump1 != dump2 {
		t.Fatalf("identical chaos+autoscale runs diverged:\n-- 1 --\n%s\n-- 2 --\n%s", dump1, dump2)
	}
}

// TestRequeueRestoresQueueAccounting drives the abort path on the pure
// frontend: a dispatched batch pushed back via requeue must come back at
// the front of its tenant queue in the original order, with queue-depth and
// in-flight counters restored and nothing double-counted as admitted.
func TestRequeueRestoresQueueAccounting(t *testing.T) {
	f := NewFrontend(nil, feConfig(TenantSpec{
		Name: "a", Weight: 1, QueueLimit: 8,
		Mix: []JobClass{classFixed("c", time.Millisecond, "n")},
	}), nil)
	var reqs []*Request
	for i := 0; i < 5; i++ {
		r, v, _ := f.Admit(simnet.Time(i), 0, 0)
		if v != Admitted {
			t.Fatalf("arrival %d not admitted", i)
		}
		reqs = append(reqs, r)
	}
	admitted := f.Tenant(0).Admitted

	batch := f.NextBatch(10, nil)
	if len(batch) != 4 {
		t.Fatalf("batch size %d, want MaxBatch 4", len(batch))
	}
	if f.Queued() != 1 || f.Inflight() != 4 {
		t.Fatalf("queued/inflight = %d/%d after dispatch", f.Queued(), f.Inflight())
	}

	f.requeue(20, batch)
	if f.Queued() != 5 || f.Inflight() != 0 {
		t.Fatalf("queued/inflight = %d/%d after requeue, want 5/0", f.Queued(), f.Inflight())
	}
	if got := f.Tenant(0).Admitted; got != admitted {
		t.Fatalf("admitted moved %d -> %d on requeue (double count)", admitted, got)
	}

	// Re-dispatch: the re-queued requests come back first, in arrival order.
	again := f.NextBatch(30, nil)
	if len(again) != 4 {
		t.Fatalf("re-dispatch batch size %d", len(again))
	}
	for i, r := range again {
		if r != reqs[i] {
			t.Fatalf("re-dispatch order broken at %d", i)
		}
	}
	for _, r := range again {
		f.Complete(40, r, true)
	}
	rest := f.NextBatch(50, nil)
	if len(rest) != 1 || rest[0] != reqs[4] {
		t.Fatal("tail request lost or reordered after requeue cycle")
	}
	f.Complete(60, rest[0], true)
	st := f.Tenant(0)
	if st.Admitted != st.Completed {
		t.Fatalf("admitted %d != completed %d after requeue cycle", st.Admitted, st.Completed)
	}
}

// TestScaleHintStretchesWithInactiveSlots checks the retry-after fix: queue
// sheds tell clients to back off in proportion to the capacity actually in
// rotation.
func TestScaleHintStretchesWithInactiveSlots(t *testing.T) {
	el := &elastic{totalSlots: 4, activeSlots: 4}
	h := simnet.Duration(time.Millisecond)
	if got := el.scaleHint(h); got != h {
		t.Fatalf("full fleet hint %v, want %v", got, h)
	}
	el.activeSlots = 2
	if got := el.scaleHint(h); got != 2*h {
		t.Fatalf("half fleet hint %v, want %v", got, 2*h)
	}
	el.activeSlots = 0
	if got := el.scaleHint(h); got != maxRetryAfter {
		t.Fatalf("no-capacity hint %v, want cap %v", got, maxRetryAfter)
	}
	el.activeSlots = 1
	if got := el.scaleHint(simnet.Duration(40 * time.Millisecond)); got != maxRetryAfter {
		t.Fatalf("stretched hint %v exceeds cap %v", got, maxRetryAfter)
	}
}
