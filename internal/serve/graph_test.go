package serve

import (
	"testing"
	"time"

	"cashmere/internal/core"
	"cashmere/internal/mcl/codegen"
)

const serveScaleSrc = `
perfect void scale(int n, float[n] a) {
  foreach (int i in n threads) {
    a[i] = a[i] * 2.0 + 1.0;
  }
}
`

// graphWorkload builds a one-tenant workload whose only job class is a
// three-stage chained dataflow graph (scale -> scale -> scale).
func graphWorkload(t *testing.T, rate float64) *Workload {
	t.Helper()
	ks, err := codegen.NewKernelSet("scale", serveScaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1 << 16 // 256 KiB per buffer
	gs := core.NewGraphSpec("serve-chain")
	a := gs.Input("a", 4*n)
	b := gs.Intermediate("b", 4*n)
	c := gs.Intermediate("c", 4*n)
	d := gs.Output("d", 4*n)
	p := map[string]int64{"n": n}
	gs.Stage(core.StageSpec{Kernel: "scale", Params: p, Reads: []*core.GraphBuffer{a}, Writes: []*core.GraphBuffer{b}})
	gs.Stage(core.StageSpec{Kernel: "scale", Params: p, Reads: []*core.GraphBuffer{b}, Writes: []*core.GraphBuffer{c}})
	gs.Stage(core.StageSpec{Kernel: "scale", Params: p, Reads: []*core.GraphBuffer{c}, Writes: []*core.GraphBuffer{d}})
	in, out := gs.ExternalBytes()
	return &Workload{
		KernelSets: []*codegen.KernelSet{ks},
		Tenants: []TenantSpec{{
			Name: "graphs", Weight: 1,
			Arrival:    ArrivalSpec{Kind: Poisson, RatePerSec: rate},
			QueueLimit: 128,
			Mix: []JobClass{{
				Name: "chain", Graph: gs,
				InBytes: in, OutBytes: out,
				Flops: 3 * 2 * n, Weight: 1,
			}},
		}},
	}
}

// TestServeGraphClassEndToEnd runs a tenant whose requests are whole
// dataflow-graph executions: EstimateCosts must price the DAG, every
// completed request must correspond to one graph run, and remote nodes must
// execute graphs through the dispatch protocol.
func TestServeGraphClassEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	w := graphWorkload(t, 200)
	if err := w.EstimateCosts("gtx480"); err != nil {
		t.Fatal(err)
	}
	if w.Tenants[0].Mix[0].CostHint <= 0 {
		t.Fatal("EstimateCosts left the graph class unpriced")
	}
	cl := testCluster(t, 2, 11, w)
	cfg := DefaultConfig(w)
	cfg.Horizon = 100 * time.Millisecond
	rep, err := Run(cl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatal("no graph requests completed")
	}
	m := cl.CollectMetrics()
	rep.FillMetrics(m)
	if runs := m.Int("graph.runs"); runs != rep.Completed {
		t.Errorf("graph.runs = %d, completed = %d; want one DAG run per request", runs, rep.Completed)
	}
	if m.Int("graph.bytes_moved_saved") <= 0 {
		t.Error("graph runs saved no transfer bytes")
	}
	remote := int64(0)
	for _, d := range cl.NodeState(1).Devices {
		remote += d.Launches()
	}
	if remote == 0 {
		t.Error("remote node executed no graph stages")
	}
}

// TestServeGraphClassCannotBatch pins the validation: a graph-valued class
// with a BatchParam is rejected both at estimation and at Run.
func TestServeGraphClassCannotBatch(t *testing.T) {
	w := graphWorkload(t, 10)
	w.Tenants[0].Mix[0].BatchParam = "n"
	if err := w.EstimateCosts("gtx480"); err == nil {
		t.Error("EstimateCosts accepted a batchable graph class")
	}
	cl := testCluster(t, 1, 1, w)
	cfg := DefaultConfig(w)
	cfg.Horizon = 10 * time.Millisecond
	if _, err := Run(cl, cfg); err == nil {
		t.Error("Run accepted a batchable graph class")
	}
}
