GO ?= go

# COVER_FLOOR is the total-statement-coverage floor `make cover` (and the CI
# coverage job) enforces. Measured 70.9% with the elastic-serving layer; the
# floor leaves a few points of headroom so refactors don't flap, but catches
# real erosion.
COVER_FLOOR ?= 68.0

.PHONY: check lint vet build test race cover bench bench-sim bench-serve bench-autoscale bench-allocs bench-svm

# check runs everything CI runs (minus the version matrix).
check: lint build test race cover

# lint fails on unformatted files, vet findings and (when the tool is
# installed, as in CI) staticcheck findings.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipped"; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race covers the packages with real concurrency: the closure engine's
# parallel foreach worker pool, the simulation kernel's process switching,
# the pooled messaging layers built on it, the parallel experiment harness,
# the per-sim trace recorders it writes, the device runtime with its
# graph machinery (concurrent DAG submissions share plans and workspaces),
# and the serving layer whose partitioned runs drive drain/abort/migrate
# paths across parallel event loops.
race:
	$(GO) test -race ./internal/mcl/... ./internal/simnet/... ./internal/network/... ./internal/satin/... ./internal/bench/... ./internal/trace/... ./internal/core/... ./internal/ocl/... ./internal/svm/... ./internal/serve/...

# cover writes cover.out and fails if total statement coverage drops below
# COVER_FLOOR.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	ok=$$(awk -v t=$$total -v f=$(COVER_FLOOR) 'BEGIN{print (t+0 >= f+0) ? 1 : 0}'); \
	if [ "$$ok" != "1" ]; then \
		echo "coverage $$total% is below the floor of $(COVER_FLOOR)%"; exit 1; fi; \
	echo "coverage $$total% (floor $(COVER_FLOOR)%)"

# bench regenerates the engine-comparison numbers recorded in
# BENCH_kernels.json.
bench:
	$(GO) test -run xxx -bench 'BenchmarkKernelExec|BenchmarkEventHeap' -benchtime 2s . ./internal/simnet/

# bench-sim regenerates the simulator hot-path numbers recorded in
# BENCH_sim.json (event-loop cost, network message rate, tracing overhead,
# device launch path, Fig. 7 harness wall-clock at parallelism 1 and 4 plus
# the intra-simulation partitioned scheduler at -partitions 4) and prints
# per-benchmark deltas against the committed file before overwriting.
bench-sim:
	$(GO) run ./cmd/bench-sim

# bench-serve regenerates BENCH_serve.json: the latency-vs-offered-load
# sweep of the online serving layer (standard 3-tenant workload on 4 GTX480
# nodes). Output is byte-identical at any parallelism.
bench-serve:
	$(GO) run ./cmd/cashmere-serve -sweep -out BENCH_serve.json

# bench-autoscale prints the short elasticity sweep (static fleet vs
# autoscaled under a 5x diurnal swing) without touching BENCH_serve.json;
# the CI bench smoke runs it to catch elasticity regressions quickly.
bench-autoscale:
	$(GO) run ./cmd/cashmere-serve -sweep-autoscale -duration 450ms

# bench-allocs enforces the pinned zero-allocation contracts: the simnet
# event loop, the pooled network message path, disabled tracing, the
# device-runtime enqueue path (BenchmarkLaunchPath), the dataflow-graph
# submit path (BenchmarkGraphSubmitPath), the serving admission fast
# path (BenchmarkServeAdmitPath) and the SVM steady-state re-fault path
# (BenchmarkSVMRefault) must all report 0 allocs/op. CI fails if any of
# them regresses above zero.
bench-allocs:
	@$(GO) test -run xxx -benchmem -benchtime 2000x \
		-bench 'BenchmarkSimnetEventLoop|BenchmarkNetworkMessageRate|BenchmarkTraceOverhead|BenchmarkLaunchPath|BenchmarkGraphSubmitPath|BenchmarkServeAdmitPath|BenchmarkSVMRefault' \
		./internal/simnet/ ./internal/network/ ./internal/trace/ ./internal/ocl/ ./internal/core/ ./internal/svm/ ./internal/serve/ | tee bench-allocs.out
	@bad=$$(awk '/allocs\/op/ { name=$$1; sub(/-[0-9]+$$/, "", name); \
		if (name ~ /^(BenchmarkSimnetEventLoop\/hold|BenchmarkSimnetEventLoop\/pingpong|BenchmarkNetworkMessageRate\/bulk|BenchmarkNetworkMessageRate\/ctl|BenchmarkTraceOverhead\/off|BenchmarkTraceOverhead\/off\/span-only|BenchmarkTraceOverheadDevice\/off|BenchmarkLaunchPath|BenchmarkGraphSubmitPath|BenchmarkServeAdmitPath|BenchmarkSVMRefault)$$/ \
		&& $$(NF-1)+0 > 0) print name, $$(NF-1), "allocs/op" }' bench-allocs.out); \
	if [ -n "$$bad" ]; then echo "zero-alloc benchmarks regressed:"; echo "$$bad"; exit 1; fi; \
	echo "all pinned benchmarks at 0 allocs/op"

# bench-svm regenerates the transfer-model crossover recorded in
# BENCH_svm.json: explicit copies vs demand-paged shared virtual memory
# (both protocols) from sparse iterative reuse to bulk streaming.
bench-svm:
	$(GO) run ./cmd/cashmere-bench -experiment svm -svm-json BENCH_svm.json
