GO ?= go

.PHONY: check vet build test race bench bench-sim

# check runs everything CI runs.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race covers the packages with real concurrency: the closure engine's
# parallel foreach worker pool, the simulation kernel's process switching,
# the pooled messaging layers built on it, and the parallel experiment
# harness.
race:
	$(GO) test -race ./internal/mcl/... ./internal/simnet/... ./internal/network/... ./internal/satin/... ./internal/bench/...

# bench regenerates the engine-comparison numbers recorded in
# BENCH_kernels.json.
bench:
	$(GO) test -run xxx -bench 'BenchmarkKernelExec|BenchmarkEventHeap' -benchtime 2s . ./internal/simnet/

# bench-sim regenerates the simulator hot-path numbers recorded in
# BENCH_sim.json (event-loop cost, network message rate, Fig. 7 harness
# wall-clock at parallelism 1 and 4).
bench-sim:
	$(GO) run ./cmd/bench-sim
