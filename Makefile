GO ?= go

.PHONY: check vet build test race bench

# check runs everything CI runs.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race covers the packages with real concurrency: the closure engine's
# parallel foreach worker pool and the simulation kernel's process switching.
race:
	$(GO) test -race ./internal/mcl/... ./internal/simnet/...

# bench regenerates the engine-comparison numbers recorded in
# BENCH_kernels.json.
bench:
	$(GO) test -run xxx -bench 'BenchmarkKernelExec|BenchmarkEventHeap' -benchtime 2s . ./internal/simnet/
