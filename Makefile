GO ?= go

# COVER_FLOOR is the total-statement-coverage floor `make cover` (and the CI
# coverage job) enforces. Measured 69.3% when introduced; the floor leaves a
# few points of headroom so refactors don't flap, but catches real erosion.
COVER_FLOOR ?= 65.0

.PHONY: check lint vet build test race cover bench bench-sim

# check runs everything CI runs (minus the version matrix).
check: lint build test race cover

# lint fails on unformatted files, vet findings and (when the tool is
# installed, as in CI) staticcheck findings.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipped"; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race covers the packages with real concurrency: the closure engine's
# parallel foreach worker pool, the simulation kernel's process switching,
# the pooled messaging layers built on it, the parallel experiment harness,
# and the per-sim trace recorders it writes.
race:
	$(GO) test -race ./internal/mcl/... ./internal/simnet/... ./internal/network/... ./internal/satin/... ./internal/bench/... ./internal/trace/...

# cover writes cover.out and fails if total statement coverage drops below
# COVER_FLOOR.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	ok=$$(awk -v t=$$total -v f=$(COVER_FLOOR) 'BEGIN{print (t+0 >= f+0) ? 1 : 0}'); \
	if [ "$$ok" != "1" ]; then \
		echo "coverage $$total% is below the floor of $(COVER_FLOOR)%"; exit 1; fi; \
	echo "coverage $$total% (floor $(COVER_FLOOR)%)"

# bench regenerates the engine-comparison numbers recorded in
# BENCH_kernels.json.
bench:
	$(GO) test -run xxx -bench 'BenchmarkKernelExec|BenchmarkEventHeap' -benchtime 2s . ./internal/simnet/

# bench-sim regenerates the simulator hot-path numbers recorded in
# BENCH_sim.json (event-loop cost, network message rate, tracing overhead,
# Fig. 7 harness wall-clock at parallelism 1 and 4).
bench-sim:
	$(GO) run ./cmd/bench-sim
