// Graph: compound multi-kernel dataflow graphs.
//
// A k-means-style pipeline — assign points to centroids, score each point
// against its centroid, filter the scores — is declared once as a dataflow
// graph (buffers are typed edges, kernels are stages) and submitted
// repeatedly against a cluster of heterogeneous nodes (K20 + Xeon Phi). The
// runtime schedules the whole DAG at once:
//
//   - the assign→score and score→filter intermediates chain
//     device-resident, so they never cross PCIe;
//   - the bulk points input uploads once per node and stays resident across
//     iterations (SetVersion would re-ship it);
//   - data-parallel stages may split across the node's devices with slice
//     sizes proportional to roofline-predicted throughput.
//
// The same pipeline also runs as the equivalent naive per-kernel launch
// sequence (every stage ships its inputs down and outputs back), so the
// printed comparison shows exactly what the graph machinery saves. All
// numbers are virtual (trajectory-determined): output is byte-identical at
// any -partitions count, which the CI determinism job diffs.
//
// Run with: go run ./examples/graph [-iters 5] [-partitions 4] [-metrics]
package main

import (
	"flag"
	"fmt"
	"log"

	"cashmere"
)

const assignSrc = `
perfect void assign(int n, int k, int d,
    float[n,d] points, float[k,d] centroids, int[n] asn) {
  foreach (int i in n threads) {
    int best = 0;
    float bestDist = 1e30;
    for (int c = 0; c < k; c++) {
      float dist = 0.0;
      for (int f = 0; f < d; f++) {
        float diff = points[i,f] - centroids[c,f];
        dist += diff * diff;
      }
      if (dist < bestDist) {
        bestDist = dist;
        best = c;
      }
    }
    asn[i] = best;
  }
}
`

const scoreSrc = `
perfect void score(int n, int k, int d,
    float[n,d] points, float[k,d] centroids, int[n] asn, float[n] dist) {
  foreach (int i in n threads) {
    int c = asn[i];
    float acc = 0.0;
    for (int f = 0; f < d; f++) {
      float diff = points[i,f] - centroids[c,f];
      acc += diff * diff;
    }
    dist[i] = acc;
  }
}
`

const filterSrc = `
perfect void filter(int n, float[n] dist, int[n] mask) {
  foreach (int i in n threads) {
    mask[i] = 0;
    if (dist[i] < 1.0) {
      mask[i] = 1;
    }
  }
}
`

const (
	nPoints   = 1 << 20 // 16 MiB of points at d=4
	nClusters = 64
	nDims     = 4
)

// pipeline declares the three-stage graph. Buffer sizes are the real array
// sizes; the scheduler derives every placement from them and the kernels'
// roofline costs.
func pipeline() *cashmere.GraphSpec {
	gs := cashmere.NewGraphSpec("kmeans-pipe")
	points := gs.Input("points", 4*nPoints*nDims)
	cents := gs.Input("centroids", 4*nClusters*nDims)
	asn := gs.Intermediate("asn", 4*nPoints)
	dist := gs.Intermediate("dist", 4*nPoints)
	mask := gs.Output("mask", 4*nPoints)
	params := map[string]int64{"n": nPoints, "k": nClusters, "d": nDims}
	gs.Stage(cashmere.StageSpec{
		Kernel: "assign", Params: params, SplitParam: "n",
		Reads: []*cashmere.GraphBuffer{points}, Broadcast: []*cashmere.GraphBuffer{cents},
		Writes: []*cashmere.GraphBuffer{asn},
	})
	gs.Stage(cashmere.StageSpec{
		Kernel: "score", Params: params, SplitParam: "n",
		Reads: []*cashmere.GraphBuffer{points, asn}, Broadcast: []*cashmere.GraphBuffer{cents},
		Writes: []*cashmere.GraphBuffer{dist},
	})
	gs.Stage(cashmere.StageSpec{
		Kernel: "filter", Params: params, SplitParam: "n",
		Reads:  []*cashmere.GraphBuffer{dist},
		Writes: []*cashmere.GraphBuffer{mask},
	})
	return gs
}

// run executes iters submissions of the pipeline on every node of a fresh
// cluster — as one dataflow graph per submission, or as the naive per-kernel
// launch sequence — and reports the virtual makespan plus total PCIe bytes.
func run(nodes, partitions int, oracle bool, iters int, graph bool) (cashmere.Time, *cashmere.Metrics) {
	cfg := cashmere.DefaultConfig(nodes, "k20")
	for i := range cfg.Nodes {
		cfg.Nodes[i] = cashmere.NodeSpec{Devices: []string{"k20", "xeon_phi"}}
	}
	cfg.Partitions = partitions
	cfg.Oracle = oracle
	cl, err := cashmere.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for name, src := range map[string]string{"assign": assignSrc, "score": scoreSrc, "filter": filterSrc} {
		ks, err := cashmere.NewKernelSet(name, src)
		if err != nil {
			log.Fatal(err)
		}
		if err := cl.Register(ks); err != nil {
			log.Fatal(err)
		}
	}
	gs := pipeline()
	_, end, err := cl.Run(func(ctx *cashmere.Context) any {
		ctx.EnableManyCore()
		for j := 0; j < nodes; j++ {
			ctx.Spawn(cashmere.JobDesc{Name: "pipe", InputBytes: 64, ResultBytes: 64},
				func(c *cashmere.Context) any {
					for it := 0; it < iters; it++ {
						if graph {
							if err := cashmere.RunGraph(c, gs); err != nil {
								log.Fatal(err)
							}
						} else if err := gs.RunNaive(c); err != nil {
							log.Fatal(err)
						}
					}
					return nil
				})
		}
		ctx.Sync()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return end, cl.CollectMetrics()
}

func main() {
	var (
		nodes      = flag.Int("nodes", 4, "number of K20+XeonPhi nodes")
		iters      = flag.Int("iters", 5, "pipeline submissions per leaf")
		metrics    = flag.Bool("metrics", false, "print the graph run's metrics dump")
		partitions = flag.Int("partitions", 1,
			"split the simulation into N conservatively synchronized partitions (same output)")
		oracle = flag.Bool("pdes-oracle", false,
			"step partition windows sequentially (determinism oracle; same output)")
	)
	flag.Parse()

	gEnd, gm := run(*nodes, *partitions, *oracle, *iters, true)
	nEnd, nm := run(*nodes, *partitions, *oracle, *iters, false)
	gBytes, nBytes := gm.Int("mcl.bytes_moved"), nm.Int("mcl.bytes_moved")

	fmt.Printf("k-means pipeline (assign -> score -> filter), %d nodes x 2 devices, %d leaves x %d iterations\n\n",
		*nodes, *nodes, *iters)
	fmt.Printf("naive per-kernel launches: %14v virtual, %6d MiB over PCIe\n", nEnd, nBytes>>20)
	fmt.Printf("dataflow graph:            %14v virtual, %6d MiB over PCIe\n", gEnd, gBytes>>20)
	fmt.Printf("\nspeedup %.2fx, bytes moved -%0.f%% (runs %d, stages %d, resident hits %d, bytes saved %d MiB)\n",
		float64(nEnd)/float64(gEnd),
		100*(1-float64(gBytes)/float64(nBytes)),
		gm.Int("graph.runs"), gm.Int("graph.stages"),
		gm.Int("graph.resident_hits"), gm.Int("graph.bytes_moved_saved")>>20)
	fmt.Println("\nintermediates chain device-resident; the bulk points input uploads once per")
	fmt.Println("node and is a resident hit on every later iteration.")
	if *metrics {
		fmt.Print(gm.Format())
	}
}
