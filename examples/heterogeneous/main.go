// Heterogeneous execution: an n-body simulation across a cluster that
// mixes five device types, including a node that carries both a K20 and a
// Xeon Phi — the configuration class of Table III of the paper.
//
// The example shows Cashmere's two load-balancing layers at work: random
// work stealing spreads node-level jobs across the unequal nodes, and the
// intra-node scheduler splits each node's jobs over its devices using the
// static speed table and measured kernel times (Sec. III-B).
//
// Run with: go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"cashmere"
)

const nbodyKernel = `
perfect void nbody(int nloc, int off, int n,
    float[n,4] pos, float[nloc,3] acc) {
  foreach (int i in nloc threads) {
    float px = pos[off + i, 0];
    float py = pos[off + i, 1];
    float pz = pos[off + i, 2];
    float ax = 0.0;
    float ay = 0.0;
    float az = 0.0;
    for (int j = 0; j < n; j++) {
      float dx = pos[j,0] - px;
      float dy = pos[j,1] - py;
      float dz = pos[j,2] - pz;
      float d2 = dx * dx + dy * dy + dz * dz + 0.01;
      float inv = rsqrt(d2);
      float s = pos[j,3] * inv * inv * inv;
      ax += dx * s;
      ay += dy * s;
      az += dz * s;
    }
    acc[i,0] = ax;
    acc[i,1] = ay;
    acc[i,2] = az;
  }
}
`

func main() {
	ks, err := cashmere.NewKernelSet("nbody", nbodyKernel)
	if err != nil {
		log.Fatal(err)
	}

	// A small heterogeneous cluster: widely different device speeds, one
	// node with two devices.
	cfg := cashmere.DefaultConfig(4, "gtx480")
	cfg.Nodes = []cashmere.NodeSpec{
		{Devices: []string{"gtx480"}},
		{Devices: []string{"titan"}},
		{Devices: []string{"c2050"}},
		{Devices: []string{"k20", "xeon_phi"}},
	}
	cl, err := cashmere.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := cl.Register(ks); err != nil {
		log.Fatal(err)
	}

	const (
		n      = 1 << 20 // one million bodies
		leaf   = 16384
		leaves = n / leaf
	)
	var run func(ctx *cashmere.Context, lo, hi int)
	run = func(ctx *cashmere.Context, lo, hi int) {
		if hi-lo == 1 {
			k, err := cashmere.GetKernel(ctx, "nbody")
			if err != nil {
				log.Fatal(err)
			}
			err = k.NewLaunch(cashmere.LaunchSpec{
				Params:  map[string]int64{"nloc": leaf, "off": int64(lo * leaf), "n": n},
				InBytes: n * 16, OutBytes: leaf * 12,
			}).Run(ctx)
			if err != nil {
				log.Fatal(err)
			}
			return
		}
		if hi-lo <= 8 && !ctx.ManyCore() {
			ctx.EnableManyCore()
		}
		mid := (lo + hi) / 2
		desc := cashmere.JobDesc{Name: "nbody", InputBytes: 256, ResultBytes: int64((hi - lo) * leaf * 12)}
		ctx.Spawn(desc, func(c *cashmere.Context) any { run(c, lo, mid); return nil })
		ctx.Spawn(desc, func(c *cashmere.Context) any { run(c, mid, hi); return nil })
		ctx.Sync()
	}

	_, elapsed, err := cl.Run(func(ctx *cashmere.Context) any {
		run(ctx, 0, leaves)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	flops := 20.0 * float64(n) * float64(n)
	fmt.Printf("n-body (%d bodies, %d leaves) on 4 heterogeneous nodes: %v, %.0f GFLOPS\n",
		n, leaves, elapsed, flops/elapsed.Seconds()/1e9)
	fmt.Println("\nper-device load (work stealing + intra-node scheduling):")
	for i := range cfg.Nodes {
		ns := cl.NodeState(i)
		for _, d := range ns.Devices {
			fmt.Printf("  node %d %-12s launches=%3d kernel-busy=%12v\n",
				i, d.Name(), d.Launches(), d.KernelBusy())
		}
	}
}
