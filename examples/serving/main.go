// Online serving: the simulated cluster as a multi-tenant service.
//
// Three tenants offer kernel requests against a four-node GPU cluster at
// 80% of its modeled capacity: an interactive tenant (small matmuls,
// Poisson arrivals, high weight), an analytics tenant (k-means scans and
// larger matmuls, bursty MMPP arrivals) and a background tenant (diurnal
// arrivals). Token buckets and bounded queues shed overload with
// retry-after hints, weighted-fair queueing divides the devices by tenant
// weight, and same-class requests coalesce into batched launches. The
// report shows per-tenant p50/p95/p99 latency against the 50ms SLO.
//
// Run with: go run ./examples/serving
package main

import (
	"fmt"
	"log"

	"cashmere"
)

func main() {
	w, err := cashmere.StandardServeWorkload(1)
	if err != nil {
		log.Fatal(err)
	}
	const nodes = 4
	capacity, err := w.CapacityRPS("gtx480", nodes)
	if err != nil {
		log.Fatal(err)
	}
	w.ScaleRates(0.8 * capacity)

	cl, err := cashmere.NewCluster(cashmere.DefaultConfig(nodes, "gtx480"))
	if err != nil {
		log.Fatal(err)
	}
	for _, ks := range w.KernelSets {
		if err := cl.Register(ks); err != nil {
			log.Fatal(err)
		}
	}

	rep, err := cashmere.Serve(cl, cashmere.DefaultServeConfig(w))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d x gtx480, modeled capacity %.0f req/s, offered 0.80x\n", nodes, capacity)
	fmt.Print(rep.Format())
}
