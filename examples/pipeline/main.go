// Pipeline: the asynchronous command-queue device runtime, used directly.
//
// Cashmere's launch path (internal/core) drives devices through in-order
// command queues: EnqueueWrite / EnqueueLaunch / EnqueueRead append an
// operation to the engine's queue and return an Event that completes in
// virtual time — no process is parked per operation, and events express
// cross-queue dependencies. This example uses that API directly to show the
// Sec. III-B overlap claim ("the data transfers can be completely overlapped
// with kernel executions except for the first and last"): the same chunked
// workload runs once serially (blocking wrappers) and once as a
// double-buffered pipeline (two staging chunks, write[i] depending on
// read[i-2]), on a K20 with dual DMA engines.
//
// Run with: go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"cashmere/internal/device"
	"cashmere/internal/ocl"
	"cashmere/internal/simnet"
)

const (
	passes = 8
	chunk  = int64(64 << 20) // 64 MiB in and out per pass
)

// passCost is the roofline descriptor for one pass's kernel: enough flops
// that compute time is comparable to the PCIe time, so overlap matters.
var passCost = device.KernelCost{
	Flops:        8e9,
	MemBytes:     float64(2 * chunk),
	ComputeEff:   0.5,
	BandwidthEff: 0.5,
}

// run executes the chunked workload on a fresh device and returns the
// virtual makespan plus the device's measured transfer/compute overlap.
func run(pipelined bool) (makespan simnet.Duration, overlap simnet.Duration) {
	k := simnet.NewKernel(1)
	spec, err := device.Lookup("k20")
	if err != nil {
		log.Fatal(err)
	}
	dev := ocl.NewDevice(k, spec, 0, 0, nil)

	k.Spawn("host", func(p *simnet.Proc) {
		if !pipelined {
			// Serial: each pass blocks on write, then launch, then read.
			// The engines never run concurrently.
			for i := 0; i < passes; i++ {
				dev.WriteBytes(p, chunk, "")
				dev.Launch(p, passCost, "")
				dev.ReadBytes(p, chunk, "")
			}
			return
		}
		// Pipelined: enqueue every pass up front with event dependencies.
		// Two staging chunks on the host side: pass i may only start its
		// H2D write once pass i-2 has read its result back.
		var last ocl.Event
		var reads [2]ocl.Event
		for i := 0; i < passes; i++ {
			w := dev.EnqueueWrite(chunk, "", reads[i%2])
			l := dev.EnqueueLaunch(passCost, "", w)
			r := dev.EnqueueRead(chunk, "", l)
			reads[i%2] = r
			last = r
		}
		last.Wait(p) // one park for the whole pipeline
	})
	k.Run(0)
	return simnet.Duration(k.Now()), dev.OverlapLowerBound()
}

func main() {
	serial, _ := run(false)
	pipe, overlap := run(true)

	fmt.Printf("%d passes of %d MiB in + %d MiB out on a simulated K20 (dual DMA engines)\n\n",
		passes, chunk>>20, chunk>>20)
	fmt.Printf("serial    (blocking Write/Launch/Read): %12v virtual\n", serial)
	fmt.Printf("pipelined (events, double-buffered):    %12v virtual\n", pipe)
	fmt.Printf("\nspeedup: %.2fx, transfer/compute overlap >= %v\n",
		float64(serial)/float64(pipe), overlap)
	fmt.Println("\nonly the first write and the last read sit outside kernel execution —")
	fmt.Println("exactly the Sec. III-B overlap structure Cashmere relies on.")
}
