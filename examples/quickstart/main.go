// Quickstart: the smallest complete Cashmere program.
//
// It defines one MCPL kernel (vector scale), builds a four-node simulated
// cluster with one GTX480 per node, divides the work with spawn/sync, and
// runs each leaf on the node's device — with verification enabled, so the
// kernel really executes and the result is checked.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cashmere"
)

const kernelSrc = `
perfect void scale(int n, float[n] a) {
  foreach (int i in n threads) {
    a[i] = a[i] * 2.0 + 1.0;
  }
}
`

func main() {
	// 1. Parse, check and register the kernel (all versions of it — here
	//    just the one written for hardware description "perfect").
	ks, err := cashmere.NewKernelSet("scale", kernelSrc)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build a simulated cluster: 4 nodes, one GTX480 each, QDR
	//    InfiniBand. Verify mode runs kernels for real on the given data.
	cfg := cashmere.DefaultConfig(4, "gtx480")
	cfg.Verify = true
	cl, err := cashmere.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := cl.Register(ks); err != nil {
		log.Fatal(err)
	}

	// 3. The data: 1 Mi floats, divided into 8 leaves.
	const n, leaves = 1 << 20, 8
	chunk := n / leaves
	data := make([]*cashmere.Array, leaves)
	for i := range data {
		data[i] = cashmere.NewFloatArray(chunk)
		for j := 0; j < chunk; j++ {
			data[i].F[j] = float64(i*chunk + j)
		}
	}

	// 4. The divide-and-conquer host program (Fig. 5 of the paper).
	var run func(ctx *cashmere.Context, lo, hi int)
	run = func(ctx *cashmere.Context, lo, hi int) {
		if hi-lo == 1 {
			kernel, err := cashmere.GetKernel(ctx, "scale")
			if err != nil {
				log.Fatal(err) // no CPU fallback in this tiny example
			}
			launch := kernel.NewLaunch(cashmere.LaunchSpec{
				Params:  map[string]int64{"n": int64(chunk)},
				InBytes: int64(4 * chunk), OutBytes: int64(4 * chunk),
				Args: []any{int64(chunk), data[lo]},
			})
			if err := launch.Run(ctx); err != nil {
				log.Fatal(err)
			}
			return
		}
		if hi-lo <= 2 && !ctx.ManyCore() {
			ctx.EnableManyCore() // leaves below here become device threads
		}
		mid := (lo + hi) / 2
		desc := cashmere.JobDesc{Name: "scale", InputBytes: int64(4 * chunk), ResultBytes: 64}
		ctx.Spawn(desc, func(c *cashmere.Context) any { run(c, lo, mid); return nil })
		ctx.Spawn(desc, func(c *cashmere.Context) any { run(c, mid, hi); return nil })
		ctx.Sync()
	}

	_, elapsed, err := cl.Run(func(ctx *cashmere.Context) any {
		run(ctx, 0, leaves)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Check the result (the kernel really ran, via the interpreter).
	for i, arr := range data {
		for j, v := range arr.F {
			want := float64(i*chunk+j)*2 + 1
			if v != want {
				log.Fatalf("data[%d][%d] = %v, want %v", i, j, v, want)
			}
		}
	}
	fmt.Printf("scaled %d floats on a 4-node simulated cluster in %v (virtual)\n", n, elapsed)
	fmt.Println("all values verified: a[i] = 2*a[i] + 1")
}
