// Fault tolerance: Satin's crash recovery inside Cashmere.
//
// A six-node cluster renders a workload; two seconds into the run, two
// nodes crash. Jobs they had stolen are re-executed by their owners
// (Satin's re-execution mechanism, Sec. II-A "fault tolerance"), and the
// computation completes with the correct result on the survivors.
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"time"

	"cashmere"
)

const kernelSrc = `
perfect void work(int n, float[n] a) {
  foreach (int i in n threads) {
    float x = a[i];
    @expect(256) for (int k = 0; k < 256; k++) {
      x = x * 0.999 + 0.001;
    }
    a[i] = x;
  }
}
`

func main() {
	ks, err := cashmere.NewKernelSet("work", kernelSrc)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := cashmere.NewCluster(cashmere.DefaultConfig(6, "gtx480"))
	if err != nil {
		log.Fatal(err)
	}
	if err := cl.Register(ks); err != nil {
		log.Fatal(err)
	}

	// Crash nodes 4 and 5 at t = 50ms (virtual), mid-computation.
	rt := cl.Runtime()
	cl.Kernel().SpawnAt(cashmere.Time(50*time.Millisecond), "chaos", func(p *cashmere.Proc) {
		fmt.Printf("t=%v: killing nodes 4 and 5\n", p.Now())
		rt.Kill(4)
		rt.Kill(5)
	})

	const leaves = 64
	var done int
	var run func(ctx *cashmere.Context, lo, hi int)
	run = func(ctx *cashmere.Context, lo, hi int) {
		if hi-lo == 1 {
			k, err := cashmere.GetKernel(ctx, "work")
			if err != nil {
				return
			}
			if err := k.NewLaunch(cashmere.LaunchSpec{
				Params:  map[string]int64{"n": 1 << 24},
				InBytes: 4 << 24, OutBytes: 4 << 24,
			}).Run(ctx); err == nil {
				done++
			}
			return
		}
		if hi-lo <= 2 && !ctx.ManyCore() {
			ctx.EnableManyCore()
		}
		mid := (lo + hi) / 2
		desc := cashmere.JobDesc{Name: "work", InputBytes: 4 << 24, ResultBytes: 4 << 24}
		ctx.Spawn(desc, func(c *cashmere.Context) any { run(c, lo, mid); return nil })
		ctx.Spawn(desc, func(c *cashmere.Context) any { run(c, mid, hi); return nil })
		ctx.Sync()
	}

	_, elapsed, err := cl.Run(func(ctx *cashmere.Context) any {
		run(ctx, 0, leaves)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed %d/%d leaves in %v despite two crashed nodes\n", done, leaves, elapsed)
	fmt.Printf("jobs re-executed after the crash: %d\n", rt.JobsReExecuted())
	if rt.JobsReExecuted() == 0 {
		fmt.Println("(crash happened after the victims had finished their stolen work)")
	}
}
