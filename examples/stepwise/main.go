// Stepwise refinement for performance: the MCL methodology on the paper's
// matrix multiplication kernel (Figs. 2 and 3).
//
// The program starts from the level-perfect kernel, shows the feedback the
// compiler gives when targeting level gpu, presents the refined
// (local-memory tiled) kernel that silences the feedback, and compares the
// modeled performance of both versions on every device of the catalog.
//
// Run with: go run ./examples/stepwise
package main

import (
	"fmt"
	"log"

	"cashmere"
)

const matmulPerfect = `
perfect void matmul(int n, int m, int p,
    float[n,m] c, float[n,p] a, float[p,m] b) {
  foreach (int i in n threads) {
    foreach (int j in m threads) {
      float sum = 0.0;
      for (int k = 0; k < p; k++) {
        sum += a[i,k] * b[k,j];
      }
      c[i,j] += sum;
    }
  }
}
`

const matmulGPU = `
gpu void matmul(int n, int m, int p,
    float[n,m] c, float[n,p] a, float[p,m] b) {
  foreach (int bi in n / 16 blocks) {
    foreach (int bj in m / 16 blocks) {
      local float[16,16] ta;
      local float[16,16] tb;
      foreach (int ti in 16 threads) {
        foreach (int tj in 16 threads) {
          float sum = 0.0;
          for (int t = 0; t < p / 16; t++) {
            ta[ti,tj] = a[bi * 16 + ti, t * 16 + tj];
            tb[ti,tj] = b[t * 16 + ti, bj * 16 + tj];
            barrier();
            for (int k = 0; k < 16; k++) {
              sum += ta[ti,k] * tb[k,tj];
            }
            barrier();
          }
          c[bi * 16 + ti, bj * 16 + tj] += sum;
        }
      }
    }
  }
}
`

func main() {
	params := map[string]int64{"n": 2048, "m": 2048, "p": 2048}

	fmt.Println("step 1: the kernel on level `perfect` gets no feedback (idealized hardware):")
	show(matmulPerfect, "perfect", params)

	fmt.Println("\nstep 2: targeting level `gpu`, the compiler points at the memory behaviour:")
	show(matmulPerfect, "gpu", params)

	fmt.Println("\nstep 3: the refined kernel (16x16 local-memory tiles) silences the feedback:")
	show(matmulGPU, "gpu", params)

	fmt.Println("\nstep 4: modeled kernel time of both versions per device:")
	ks, err := cashmere.NewKernelSet("matmul", matmulPerfect, matmulGPU)
	if err != nil {
		log.Fatal(err)
	}
	unopt, err := cashmere.NewKernelSet("matmul", matmulPerfect)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %14s %14s %8s\n", "device", "unoptimized", "optimized", "speedup")
	for _, dev := range []string{"gtx480", "c2050", "k20", "gtx680", "titan", "hd7970", "xeon_phi"} {
		tu := kernelGFLOPS(unopt, dev, params)
		to := kernelGFLOPS(ks, dev, params)
		fmt.Printf("%-10s %11.0f GF %11.0f GF %7.1fx\n", dev, tu, to, to/tu)
	}
}

func show(src, level string, params map[string]int64) {
	msgs, err := cashmere.Feedback(src, "matmul", level, params)
	if err != nil {
		log.Fatal(err)
	}
	if len(msgs) == 0 {
		fmt.Println("  (no feedback)")
	}
	for _, m := range msgs {
		fmt.Println(" ", m)
	}
}

func kernelGFLOPS(ks *cashmere.KernelSet, dev string, params map[string]int64) float64 {
	g, err := cashmere.KernelGFLOPS(ks, dev, params, 2*2048*2048*2048)
	if err != nil {
		log.Fatal(err)
	}
	return g
}
