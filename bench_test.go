// Benchmarks regenerating every table and figure of the paper's evaluation
// (Sec. V). Each benchmark runs the corresponding experiment on the
// simulated cluster and reports the headline quantity as a custom metric,
// so `go test -bench=. -benchmem` prints the reproduced numbers:
//
//	BenchmarkFig8RaytracerAbsolute/...   ...   gflops16=<value>
//
// Shapes to compare against the paper are recorded in EXPERIMENTS.md.
package cashmere_test

import (
	"math/rand"
	"testing"

	"cashmere/internal/apps"
	"cashmere/internal/bench"
	"cashmere/internal/mcl/closure"
	"cashmere/internal/mcl/interp"
	"cashmere/internal/mcl/mcpl"
)

// benchScalability runs the scalability study for one app once per
// iteration and reports speedup and absolute GFLOPS on 16 nodes.
func benchScalability(b *testing.B, app string) {
	for i := 0; i < b.N; i++ {
		sp, ab, err := bench.Scalability(app)
		if err != nil {
			b.Fatal(err)
		}
		if su, ok := sp.Row("opt", 16); ok {
			b.ReportMetric(su, "speedup16")
		}
		if g, ok := ab.Row("opt", 16); ok {
			b.ReportMetric(g, "gflops16")
		}
		if g, ok := ab.Row("satin", 16); ok {
			b.ReportMetric(g, "satin_gflops16")
		}
	}
}

// BenchmarkTable2Classes regenerates Table II (application classes).
func BenchmarkTable2Classes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if bench.Table2() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig6KernelPerf regenerates Fig. 6 (kernel GFLOPS per device,
// unoptimized vs optimized) and reports the GTX480 matmul pair.
func BenchmarkFig6KernelPerf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig6KernelPerformance()
		if err != nil {
			b.Fatal(err)
		}
		// gtx480 is device index 1 in the sorted leaf list.
		if g, ok := fig.Row("matmul/opt", 1); ok {
			b.ReportMetric(g, "matmul_opt_gtx480")
		}
		if g, ok := fig.Row("matmul/unopt", 1); ok {
			b.ReportMetric(g, "matmul_unopt_gtx480")
		}
	}
}

// BenchmarkFig7RaytracerScalability regenerates Figs. 7 and 8.
func BenchmarkFig7RaytracerScalability(b *testing.B) { benchScalability(b, "raytracer") }

// BenchmarkFig9MatmulScalability regenerates Figs. 9 and 10.
func BenchmarkFig9MatmulScalability(b *testing.B) { benchScalability(b, "matmul") }

// BenchmarkFig11KMeansScalability regenerates Figs. 11 and 12.
func BenchmarkFig11KMeansScalability(b *testing.B) { benchScalability(b, "kmeans") }

// BenchmarkFig13NBodyScalability regenerates Figs. 13 and 14.
func BenchmarkFig13NBodyScalability(b *testing.B) { benchScalability(b, "nbody") }

// BenchmarkTable3Heterogeneous regenerates Table III and reports the four
// headline GFLOPS numbers.
func BenchmarkTable3Heterogeneous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table3()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.GFLOPS, r.App+"_gflops")
		}
	}
}

// BenchmarkFig15Efficiency regenerates Fig. 15 and reports the minimum
// heterogeneous efficiency (the paper: >90% in three of four applications).
func BenchmarkFig15Efficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig15Efficiency()
		if err != nil {
			b.Fatal(err)
		}
		for j, app := range bench.AppNames {
			if e, ok := fig.Row("heterogeneous", float64(j)); ok {
				b.ReportMetric(e, app+"_eff")
			}
		}
	}
}

// BenchmarkFig16GanttZoom regenerates the zoomed-in Gantt chart of the
// heterogeneous k-means run.
func BenchmarkFig16GanttZoom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := bench.Fig16Gantt()
		if err != nil {
			b.Fatal(err)
		}
		if len(s) == 0 {
			b.Fatal("empty chart")
		}
	}
}

// BenchmarkFig17GanttKernels regenerates the kernels-only Gantt chart.
func BenchmarkFig17GanttKernels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := bench.Fig17Gantt()
		if err != nil {
			b.Fatal(err)
		}
		if len(s) == 0 {
			b.Fatal("empty chart")
		}
	}
}

// BenchmarkAblationStealPolicy compares Satin's steal-oldest policy with
// steal-newest (DESIGN.md ablation 2) on the matmul tree.
func BenchmarkAblationStealPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		oldest, err := bench.AblationStealPolicy(true)
		if err != nil {
			b.Fatal(err)
		}
		newest, err := bench.AblationStealPolicy(false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(oldest, "steal_oldest_gflops")
		b.ReportMetric(newest, "steal_newest_gflops")
	}
}

// BenchmarkAblationScheduler compares the measured-time makespan scheduler
// with a round-robin device scheduler (DESIGN.md ablation 3).
func BenchmarkAblationScheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		phi, k20, err := bench.AblationFig16Split()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(phi), "phi_jobs")
		b.ReportMetric(float64(k20), "k20_jobs")
	}
}

// BenchmarkVerifiedMatmul runs the verification-scale matmul (kernels
// executed for real through the MCPL interpreter) as a correctness
// regression under benchmark load.
func BenchmarkVerifiedMatmul(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.VerifiedMatmul(); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = apps.PaperMatmul // keep the apps package linked for documentation

// kernelBench is one app kernel at a fixed verification-scale problem size,
// executed by both engines for the engine-comparison benchmark.
type kernelBench struct {
	name   string
	src    string
	kernel string
	args   func(r *rand.Rand) []any
}

func benchRandFloats(r *rand.Rand, dims ...int) *interp.Array {
	a := interp.NewFloatArray(dims...)
	for i := range a.F {
		a.F[i] = r.Float64()
	}
	return a
}

func kernelBenches() []kernelBench {
	return []kernelBench{
		{
			name: "matmul", src: apps.MatmulPerfect, kernel: "matmul",
			args: func(r *rand.Rand) []any {
				const n = 64
				return []any{n, n, n, interp.NewFloatArray(n, n),
					benchRandFloats(r, n, n), benchRandFloats(r, n, n)}
			},
		},
		{
			name: "kmeans", src: apps.KMeansPerfect, kernel: "kmeans",
			args: func(r *rand.Rand) []any {
				n, k, d := 512, 16, 4
				return []any{n, k, d, benchRandFloats(r, n, d),
					benchRandFloats(r, k, d), interp.NewIntArray(n)}
			},
		},
		{
			name: "nbody", src: apps.NBodyPerfect, kernel: "nbody",
			args: func(r *rand.Rand) []any {
				const n = 256
				return []any{n, 0, n, benchRandFloats(r, n, 4),
					interp.NewFloatArray(n, 3)}
			},
		},
		{
			name: "raytracer", src: apps.RaytracerPerfect, kernel: "raytrace",
			args: func(r *rand.Rand) []any {
				w, h, rows, samples := 16, 16, 4, 2
				sc := apps.CornellScene()
				return []any{w, h, 0, rows, samples, sc.Dims[0], 1,
					sc, interp.NewFloatArray(rows, w, 3)}
			},
		},
	}
}

// BenchmarkKernelExec compares the two real-execution engines on the app
// kernels: the tree-walking interpreter vs the closure-compiled engine that
// backs codegen.Compiled.Run. Baseline numbers are recorded in
// BENCH_kernels.json.
func BenchmarkKernelExec(b *testing.B) {
	for _, kb := range kernelBenches() {
		prog, err := mcpl.Parse(kb.src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mcpl.Check(prog); err != nil {
			b.Fatal(err)
		}
		args := kb.args(rand.New(rand.NewSource(11)))
		b.Run("interp/"+kb.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := interp.Run(prog, kb.kernel, args...); err != nil {
					b.Fatal(err)
				}
			}
		})
		k, err := closure.Compile(prog, kb.kernel)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("closure/"+kb.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := k.Run(args...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
