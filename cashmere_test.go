package cashmere_test

import (
	"strings"
	"testing"

	"cashmere"
)

const scaleSrc = `
perfect void scale(int n, float[n] a) {
  foreach (int i in n threads) {
    a[i] = a[i] * 3.0;
  }
}
`

func TestPublicAPIEndToEnd(t *testing.T) {
	ks, err := cashmere.NewKernelSet("scale", scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cashmere.DefaultConfig(2, "k20")
	cfg.Verify = true
	cl, err := cashmere.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Register(ks); err != nil {
		t.Fatal(err)
	}
	a := cashmere.NewFloatArray(64)
	for i := range a.F {
		a.F[i] = float64(i)
	}
	_, elapsed, err := cl.Run(func(ctx *cashmere.Context) any {
		k, err := cashmere.GetKernel(ctx, "scale")
		if err != nil {
			t.Error(err)
			return nil
		}
		return k.NewLaunch(cashmere.LaunchSpec{
			Params:  map[string]int64{"n": 64},
			InBytes: 256, OutBytes: 256,
			Args: []any{int64(64), a},
		}).Run(ctx)
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	for i := range a.F {
		if a.F[i] != float64(i)*3 {
			t.Fatalf("a[%d] = %v", i, a.F[i])
		}
	}
}

func TestPublicFeedback(t *testing.T) {
	msgs, err := cashmere.Feedback(scaleSrc, "scale", "gpu", map[string]int64{"n": 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	_ = msgs // a simple streaming kernel may be clean; the call must work
	if _, err := cashmere.Feedback("bad source", "x", "gpu", nil); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := cashmere.Feedback(scaleSrc, "scale", "nonexistent", nil); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestPublicKernelGFLOPS(t *testing.T) {
	ks, _ := cashmere.NewKernelSet("scale", scaleSrc)
	g, err := cashmere.KernelGFLOPS(ks, "titan", map[string]int64{"n": 1 << 24}, float64(1<<24))
	if err != nil {
		t.Fatal(err)
	}
	if g <= 0 {
		t.Fatalf("GFLOPS = %v", g)
	}
}

func TestHardwareLevels(t *testing.T) {
	levels := cashmere.HardwareLevels()
	joined := strings.Join(levels, " ")
	for _, want := range []string{"perfect", "gpu", "gtx480", "xeon_phi"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("levels %v missing %s", levels, want)
		}
	}
}

func TestParseMCPL(t *testing.T) {
	if _, err := cashmere.ParseMCPL(scaleSrc); err != nil {
		t.Fatal(err)
	}
	if _, err := cashmere.ParseMCPL("perfect void k() { return 1; }"); err == nil {
		t.Fatal("type error not caught")
	}
}

func TestPublicGraphAPI(t *testing.T) {
	ks, err := cashmere.NewKernelSet("scale", scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cashmere.DefaultConfig(1, "k20")
	cfg.Verify = true
	cl, err := cashmere.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Register(ks); err != nil {
		t.Fatal(err)
	}
	a := cashmere.NewFloatArray(64)
	for i := range a.F {
		a.F[i] = float64(i)
	}
	gs := cashmere.NewGraphSpec("facade")
	in := gs.Input("in", 256)
	mid := gs.Intermediate("mid", 256)
	out := gs.Output("out", 256)
	p := map[string]int64{"n": 64}
	args := []any{int64(64), a}
	gs.Stage(cashmere.StageSpec{Kernel: "scale", Params: p,
		Reads: []*cashmere.GraphBuffer{in}, Writes: []*cashmere.GraphBuffer{mid}, Args: args})
	gs.Stage(cashmere.StageSpec{Kernel: "scale", Params: p,
		Reads: []*cashmere.GraphBuffer{mid}, Writes: []*cashmere.GraphBuffer{out}, Args: args})
	_, _, err = cl.Run(func(ctx *cashmere.Context) any {
		g, err := cashmere.GetGraph(ctx, gs)
		if err != nil {
			return err
		}
		return g.Run(ctx)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.F {
		if a.F[i] != float64(i)*9 { // two chained x3 scales, run for real
			t.Fatalf("a[%d] = %v, want %v", i, a.F[i], float64(i)*9)
		}
	}
	m := cl.CollectMetrics()
	if m.Int("graph.runs") != 1 || m.Int("graph.stages") != 2 {
		t.Errorf("graph metrics: runs=%d stages=%d, want 1/2", m.Int("graph.runs"), m.Int("graph.stages"))
	}
	if m.Int("graph.resident_hits") != 1 {
		t.Errorf("graph.resident_hits = %d, want 1 (the chained intermediate)", m.Int("graph.resident_hits"))
	}
}
