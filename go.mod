module cashmere

go 1.22
