// Package cashmere is the public API of the Cashmere reproduction: a
// programming system for heterogeneous many-core clusters that tightly
// integrates the Satin divide-and-conquer model (automatic load balancing
// through random work stealing, latency hiding, fault tolerance) with
// MCL-compiled compute kernels (hardware-description hierarchy, stepwise
// refinement for performance).
//
// Hijma, Jacobs, van Nieuwpoort, Bal: "Cashmere: Heterogeneous Many-Core
// Computing", IPDPS 2015.
//
// A minimal program (see examples/quickstart):
//
//	ks, _ := cashmere.NewKernelSet("scale", kernelSource)
//	cl, _ := cashmere.NewCluster(cashmere.DefaultConfig(4, "gtx480"))
//	cl.Register(ks)
//	cl.Run(func(ctx *cashmere.Context) any {
//	    ... ctx.Spawn / ctx.Sync / ctx.EnableManyCore ...
//	    k, _ := cashmere.GetKernel(ctx, "scale")
//	    k.NewLaunch(cashmere.LaunchSpec{...}).Run(ctx)
//	    return nil
//	})
//
// Because real many-core hardware is unavailable to this reproduction, the
// cluster is simulated: a process-oriented discrete-event kernel models the
// nodes, the QDR InfiniBand interconnect, the PCIe links and the seven
// DAS-4 device types, while MCPL kernels additionally execute for real
// through an interpreter at verification scale. See DESIGN.md.
package cashmere

import (
	"sort"
	"time"

	"cashmere/internal/core"
	"cashmere/internal/device"
	"cashmere/internal/mcl/codegen"
	"cashmere/internal/mcl/feedback"
	"cashmere/internal/mcl/hdl"
	"cashmere/internal/mcl/interp"
	"cashmere/internal/mcl/mcpl"
	"cashmere/internal/mcl/tune"
	"cashmere/internal/satin"
	"cashmere/internal/serve"
	"cashmere/internal/simnet"
	"cashmere/internal/svm"
	"cashmere/internal/trace"
)

// Core cluster types.
type (
	// Cluster is a Cashmere execution environment over a simulated cluster.
	Cluster = core.Cluster
	// Config describes the cluster: nodes, devices, network, runtime knobs.
	Config = core.Config
	// NodeSpec lists the many-core devices of one node.
	NodeSpec = core.NodeSpec
	// Context is the execution frame of a spawnable function.
	Context = satin.Context
	// Promise is a spawned job's result handle; valid after Sync.
	Promise = satin.Promise
	// JobDesc declares a job's modeled input/result sizes.
	JobDesc = satin.JobDesc
	// Kernel is a compiled compute kernel usable from leaf computations.
	Kernel = core.Kernel
	// LaunchSpec describes one kernel launch.
	LaunchSpec = core.LaunchSpec
	// KernelSet holds the stepwise-refined versions of one MCPL kernel.
	KernelSet = codegen.KernelSet
	// Time is a point in simulated time.
	Time = simnet.Time
	// Proc is a simulation process (used by custom drivers, e.g. fault
	// injection).
	Proc = simnet.Proc
	// Recorder collects trace spans, counters and gauges; export with
	// Recorder.Gantt, Recorder.CSV or Recorder.WriteChromeTrace.
	Recorder = trace.Recorder
	// Metrics is the flat name→value set returned by Cluster.CollectMetrics.
	Metrics = trace.Metrics
	// Array is an MCPL array value used at verification scale.
	Array = interp.Array
	// FeedbackMessage is one piece of MCL compiler feedback.
	FeedbackMessage = feedback.Message
)

// Shared virtual memory (internal/svm): the interchangeable alternative to
// explicit copies. With Config.Transport = TransportSVM, launch data moves
// as demand page migrations over the same DMA queues, and SVMBuffers are
// kept coherent by a per-node write-invalidate or region-ownership
// protocol. The same kernels run on either transport. See DESIGN.md,
// "Shared virtual memory", and cashmere-bench -experiment svm.
type (
	// Transport selects explicit copies or shared virtual memory.
	Transport = core.Transport
	// SVMBuffer is one coherent shared region of a node's SVM space.
	SVMBuffer = svm.Buffer
	// SVMConfig tunes page size, protocol and invalidation cost (Config.SVM).
	SVMConfig = svm.Config
	// SVMProtocol is the coherence protocol of an SVM space.
	SVMProtocol = svm.Protocol
	// SVMRange is a byte range of an SVMBuffer access.
	SVMRange = svm.Range
	// SVMMode declares how a launch touches a buffer.
	SVMMode = svm.Mode
	// BufferAccess is one declared SVM access of a LaunchSpec.
	BufferAccess = core.BufferAccess
	// SVMCounters are the fault/migration/invalidation statistics of a space.
	SVMCounters = svm.Counters
)

// Transport and SVM constants, re-exported for facade users.
const (
	TransportExplicit = core.TransportExplicit
	TransportSVM      = core.TransportSVM

	SVMRead      = svm.Read
	SVMWrite     = svm.Write
	SVMReadWrite = svm.ReadWrite

	SVMWriteInvalidate = svm.WriteInvalidate
	SVMRegionOwnership = svm.RegionOwnership
)

// ParseTransport maps the CLI spellings "explicit" and "svm" to a Transport.
func ParseTransport(s string) (Transport, error) { return core.ParseTransport(s) }

// NewSVMBuffer allocates, from inside a leaf computation, a coherent shared
// region homed on the executing node. Works under any transport.
func NewSVMBuffer(ctx *Context, name string, size int64) (*SVMBuffer, error) {
	return core.NewSVMBuffer(ctx, name, size)
}

// SyncSVM blocks until the host copy of b is current (dirty device pages
// migrate back). A no-op when nothing is dirty.
func SyncSVM(ctx *Context, b *SVMBuffer) { core.SyncSVM(ctx, b) }

// WriteSVM declares a host overwrite of b's given ranges (all of b when none
// are given), invalidating device copies.
func WriteSVM(ctx *Context, b *SVMBuffer, ranges ...SVMRange) { core.WriteSVM(ctx, b, ranges...) }

// Dataflow graphs: compound multi-kernel computations scheduled as one DAG
// across every device of a node — intermediates chain device-resident,
// data-parallel stages split across heterogeneous devices by the roofline
// cost model, oversized stages stream out-of-core. See DESIGN.md, "Dataflow
// graphs", and examples/graph.
type (
	// GraphSpec is the device-independent template: buffers are edges,
	// stages are kernel nodes.
	GraphSpec = core.GraphSpec
	// GraphBuffer is one typed edge (input, intermediate or output).
	GraphBuffer = core.GraphBuffer
	// StageSpec describes one stage: a kernel launch over graph buffers.
	StageSpec = core.StageSpec
	// Graph is a GraphSpec instantiated on one node, ready to Run.
	Graph = core.Graph
)

// NewGraphSpec starts a dataflow-graph template.
func NewGraphSpec(name string) *GraphSpec { return core.NewGraphSpec(name) }

// GetGraph instantiates (or fetches the node-cached instance of) a graph
// spec from inside a leaf computation.
func GetGraph(ctx *Context, spec *GraphSpec) (*Graph, error) { return core.GetGraph(ctx, spec) }

// RunGraph instantiates (cached) and runs a graph spec in one call.
func RunGraph(ctx *Context, spec *GraphSpec) error { return core.RunGraph(ctx, spec) }

// Online serving layer (internal/serve): run the cluster as a multi-tenant
// service with admission control, weighted-fair queueing, small-job batching
// and SLO-tracked latency. See cmd/cashmere-serve and examples/serving.
type (
	// ServeConfig describes one serving experiment: tenants, horizon,
	// batching and SLO.
	ServeConfig = serve.Config
	// ServeWorkload pairs kernel sets with the tenant population.
	ServeWorkload = serve.Workload
	// ServeReport is the outcome of a serving run: per-tenant admission,
	// shedding and latency-quantile accounting.
	ServeReport = serve.Report
	// TenantSpec configures one tenant: arrival process, token bucket,
	// queue bound, WFQ weight and job mix.
	TenantSpec = serve.TenantSpec
	// JobClass is one kind of request a tenant issues.
	JobClass = serve.JobClass
	// ArrivalSpec configures a tenant's arrival process (Poisson, bursty
	// MMPP, diurnal or trace replay).
	ArrivalSpec = serve.ArrivalSpec
	// AutoscaleConfig tunes the elastic autoscaler: queue-depth and
	// windowed-p99 signals with hysteresis, scale-in by drain-with-migration.
	AutoscaleConfig = serve.AutoscaleConfig
	// ChaosConfig tunes the deterministic fault-injection harness: network
	// partitions, device stragglers and correlated crashes.
	ChaosConfig = serve.ChaosConfig
	// ChaosEvent is one scheduled fault of an explicit chaos script.
	ChaosEvent = serve.ChaosEvent
	// TraceEvent is one arrival of a replay schedule.
	TraceEvent = serve.TraceEvent
	// ElasticReport is the capacity slice of a serving report (node-seconds
	// billed, scale events, migrations) when the autoscaler or chaos ran.
	ElasticReport = serve.ElasticReport
)

// StandardServeWorkload returns the default three-tenant serving population
// (interactive / analytics / batchy) with `total` offered requests/s.
func StandardServeWorkload(total float64) (*ServeWorkload, error) {
	return serve.StandardWorkload(total)
}

// DefaultServeConfig returns the default serving configuration for a
// workload (1s horizon, batching up to 4, 50ms SLO).
func DefaultServeConfig(w *ServeWorkload) ServeConfig { return serve.DefaultConfig(w) }

// Serve runs one serving experiment on the cluster. The workload's kernel
// sets must already be registered.
func Serve(cl *Cluster, cfg ServeConfig) (*ServeReport, error) { return serve.Run(cl, cfg) }

// DefaultAutoscale returns the default elastic-autoscaler tuning.
func DefaultAutoscale() *AutoscaleConfig { return serve.DefaultAutoscale() }

// DefaultChaos returns the default chaos-harness tuning for a seed.
func DefaultChaos(seed int64) *ChaosConfig { return serve.DefaultChaos(seed) }

// SynthesizeTrace draws a deterministic Poisson replay schedule per tenant
// from a private RNG (the "-replay synth" source of cashmere-serve).
func SynthesizeTrace(tenants []TenantSpec, horizon time.Duration, seed int64) map[string][]TraceEvent {
	return serve.SynthesizeTrace(tenants, horizon, seed)
}

// Auto-tuning (internal/mcl/tune): the automated counterpart of stepwise
// refinement. Tune searches version level x launch geometry per (kernel,
// device) on the simulated hardware; winners persist in a byte-stable cache
// that Config.Tuning feeds back into cluster initialization and
// ServeWorkload.ApplyTuning into serving cost hints and batch caps. See
// cmd/mclc -tune, cashmere-run -tune-cache and DESIGN.md, "Auto-tuning".
type (
	// TuneCache is the persistent auto-tuning cache (Config.Tuning).
	TuneCache = tune.Cache
	// TuneRequest describes one tuning problem: kernel set, device and a
	// representative launch.
	TuneRequest = tune.Request
	// TuneEntry is a cached winning configuration.
	TuneEntry = tune.Entry
	// TuneResult is a full search outcome: the entry plus every candidate.
	TuneResult = tune.Result
)

// NewTuneCache returns an empty auto-tuning cache.
func NewTuneCache() *TuneCache { return tune.NewCache() }

// LoadTuneCache reads a tuning-cache file; a missing file yields an empty
// cache.
func LoadTuneCache(path string) (*TuneCache, error) { return tune.Load(path) }

// TuneKernel runs the two-phase auto-tuning search (model-guided pruning,
// then measured refinement on a private simulated device) for one request.
func TuneKernel(req TuneRequest) (*TuneResult, error) { return tune.Tune(req, hdl.Library()) }

// TuneKey derives the cache key of a (kernel set, device-name) pair; it
// folds in the kernel sources' fingerprint, so edits miss cleanly.
func TuneKey(ks *KernelSet, dev string) (string, error) {
	spec, err := device.Lookup(dev)
	if err != nil {
		return "", err
	}
	return tune.Key(ks, spec), nil
}

// NewCluster builds a simulated Cashmere cluster.
func NewCluster(cfg Config) (*Cluster, error) { return core.NewCluster(cfg) }

// DefaultConfig returns a homogeneous cluster of n nodes, each with one
// device of the named type (catalog: gtx480, c2050, k20, gtx680, titan,
// hd7970, xeon_phi, cpu), connected by the DAS-4 QDR InfiniBand model.
func DefaultConfig(n int, device string) Config { return core.DefaultConfig(n, device) }

// NewKernelSet parses and checks MCPL sources defining versions of the
// named kernel at different hardware-description levels.
func NewKernelSet(name string, sources ...string) (*KernelSet, error) {
	return codegen.NewKernelSet(name, sources...)
}

// GetKernel retrieves, from inside a leaf computation, the kernel compiled
// for the executing node's devices (Fig. 4 of the paper).
func GetKernel(ctx *Context, name string) (*Kernel, error) { return core.GetKernel(ctx, name) }

// ParseMCPL parses and type-checks an MCPL source file.
func ParseMCPL(src string) (*mcpl.Program, error) {
	prog, err := mcpl.Parse(src)
	if err != nil {
		return nil, err
	}
	if _, err := mcpl.Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// Feedback runs the MCL stepwise-refinement feedback engine for a kernel
// against a hardware-description level (e.g. "gpu", "gtx480"). params give
// representative launch values for the kernel's scalar int parameters.
func Feedback(src, kernel, level string, params map[string]int64) ([]FeedbackMessage, error) {
	prog, err := ParseMCPL(src)
	if err != nil {
		return nil, err
	}
	h := hdl.Library()
	lv, err := h.Lookup(level)
	if err != nil {
		return nil, err
	}
	return feedback.Generate(prog, kernel, params, lv, nil)
}

// KernelGFLOPS compiles the kernel set's most specific version for the
// named device, evaluates the cost model for a launch with the given
// parameters, and reports the achieved GFLOP/s assuming the launch performs
// `flops` useful operations. It is the kernel-only metric behind Fig. 6 of
// the paper.
func KernelGFLOPS(ks *KernelSet, dev string, params map[string]int64, flops float64) (float64, error) {
	c, err := ks.Compile(dev, hdl.Library())
	if err != nil {
		return 0, err
	}
	cost, err := c.Cost(params)
	if err != nil {
		return 0, err
	}
	spec, err := device.Lookup(dev)
	if err != nil {
		return 0, err
	}
	return flops / spec.KernelTime(cost).Seconds() / 1e9, nil
}

// NewFloatArray allocates a float array for verification-scale kernel runs.
func NewFloatArray(dims ...int) *Array { return interp.NewFloatArray(dims...) }

// NewIntArray allocates an int array for verification-scale kernel runs.
func NewIntArray(dims ...int) *Array { return interp.NewIntArray(dims...) }

// HardwareLevels returns the names of the built-in hardware-description
// hierarchy (Fig. 2 of the paper), in sorted order.
func HardwareLevels() []string {
	h := hdl.Library()
	var names []string
	for name := range h.Levels {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
